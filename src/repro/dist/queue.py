"""Work-stealing job queue over TCP: the broker and its wire protocol.

One :class:`Broker` lives in the broker process (``repro dist serve``)
and is exported over TCP through a :class:`multiprocessing.managers`
manager — every method call below is therefore available to drivers and
workers as a picklingly thin RPC, with no new dependencies.

Queue semantics
---------------
* **submit** — a driver registers a *batch*: an ordered list of
  picklable job payloads.  Job ids are ``(batch_id, index)``; results
  are stored per index, so the driver's merge is by submission order no
  matter which worker computed what (the determinism contract of
  :mod:`repro.exec.pool`, extended across hosts).
* **pull** — workers lease up to ``max_jobs`` payloads.  Leases over
  the central queue make prefetched-but-unstarted jobs *stealable*: an
  idle worker whose pull finds the queue empty steals an unstarted
  lease from the most-loaded worker instead of idling.
  :meth:`Broker.lease_jobs` is the cost-aware superset: under
  ``schedule="cost"`` the broker *sizes* the lease from predicted
  runtimes (enough work to amortise the RPC, little enough that steals
  stay cheap) and may *pin* an all-cheap lease — pre-marking its jobs
  started so the worker skips the per-job ``start()`` round-trips (a
  reaped pinned lease is re-enqueued like any other; duplicate
  completions were already idempotent).
* **start** — a worker announces it is about to execute a leased job.
  ``False`` means the job was stolen or reassigned in the meantime; the
  worker just skips it (the thief runs it), so no job ever runs twice
  because of a steal.
* **complete** — stores the result and clears the lease.  Duplicate
  completions (a presumed-dead worker that was merely slow) are
  ignored; jobs are pure, so whichever result landed first is the same
  bits.  :meth:`Broker.complete_many` is the batched form: workers
  buffer finished jobs and upload them in one RPC, cutting the per-job
  round-trip count without changing what is stored (each element lands
  through the same idempotent path).  Completions carry the worker's
  measured runtime, which feeds the scheduler's cost model.
* **heartbeat / reaping** — workers beat while executing; any worker
  whose last beat is older than ``lease_timeout`` is reaped and its
  incomplete leases re-enqueued at the *front* of the queue (oldest
  index first), so a worker death mid-job delays that job, never loses
  or reorders it.

The broker also hosts the shared cache tier's store (``cache_get`` /
``cache_put``): an in-memory LRU of opaque pickled blobs keyed by the
same content addresses :class:`repro.exec.cache.ResultCache` uses on
disk (see :mod:`repro.dist.cachetier`).

Clocks: all lease/heartbeat arithmetic uses the *broker's* monotonic
clock, so multi-host fleets need no cross-host clock agreement.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import time
import zlib
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing.managers import BaseManager, Server
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.dist.costmodel import CostModel
from repro.errors import ReproError
from repro.faults import injector as faults
from repro.obs.history import SnapshotHistory
from repro.obs.metrics import MetricsRegistry

#: Shared-secret default for the manager handshake.  Every process of a
#: fleet must agree on it (``--authkey``); it authenticates peers, it is
#: *not* an encryption or trust boundary — run fleets on trusted
#: networks only.
DEFAULT_AUTHKEY = b"repro-dist"

#: Default TCP port of ``repro dist serve``.
DEFAULT_PORT = 7070

#: Seconds without a heartbeat after which a worker is considered dead
#: and its leases are re-enqueued.
DEFAULT_LEASE_TIMEOUT = 10.0

#: Default bound of the broker-side shared cache store (bytes).
DEFAULT_CACHE_MAX_BYTES = 256 * 1024 * 1024

#: Snapshots the broker-side :class:`~repro.obs.history.SnapshotHistory`
#: ring retains for SSE backfill — at the HTTP service's default 2s
#: sampling cadence this is ~17 minutes of history in a few MB.
DEFAULT_HISTORY_CAPACITY = 512

#: Predicted seconds of work one cost-sized lease aims to hand out:
#: several poll intervals' worth (so a worker rarely pulls twice per
#: second of work) yet small enough that a reaped or stolen lease
#: forfeits well under a second of predicted compute.
DEFAULT_LEASE_TARGET = 0.5

#: Hard cap on jobs per cost-sized lease, whatever the predictions say
#: — bounds both the pull RPC's payload bytes and the work a dead
#: worker's reap re-enqueues.
LEASE_MAX_JOBS = 32

JobId = Tuple[str, int]


@dataclass(frozen=True)
class WireBlob:
    """An opaque compressed envelope for large payloads or results.

    ``data`` is a one-byte tag followed by the body: ``b"z"`` marks a
    zlib-compressed pickle.  Blobs are packed by whichever side owns
    the object (driver for payload items, worker for results) and
    unpacked by the consumer; the broker stores them untouched, so
    compression changes bytes on the wire, never bytes in a result.
    """

    data: bytes


def wire_pack(obj: Any, threshold: Optional[int]) -> Any:
    """Envelope ``obj`` if its pickle is at least ``threshold`` bytes.

    ``threshold=None`` (the default everywhere) disables compression:
    the object passes through untouched and costs nothing.  Below the
    threshold the original object is returned too — small messages are
    cheaper to pickle directly than to compress.
    """
    if threshold is None or isinstance(obj, WireBlob):
        return obj
    blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(blob) < threshold:
        return obj
    return WireBlob(b"z" + zlib.compress(blob))


def wire_unpack(obj: Any) -> Any:
    """Undo :func:`wire_pack` (non-envelopes pass through untouched)."""
    if not isinstance(obj, WireBlob):
        return obj
    tag, body = obj.data[:1], obj.data[1:]
    if tag != b"z":
        raise ReproError(f"unknown wire envelope tag {tag!r}")
    return pickle.loads(zlib.decompress(body))


def parse_address(address) -> Tuple[str, int]:
    """Coerce ``"host:port"`` (or an ``(host, port)`` pair) to a pair."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        if sep and host and port.isdigit():
            return host, int(port)
    raise ReproError(
        f"broker address must be 'host:port' or (host, port), "
        f"got {address!r}"
    )


@dataclass(frozen=True)
class JobPayload:
    """One unit of distributable work: a pure function of one item.

    ``fn`` must be a module-level callable (pickled by reference, so
    both ends import the same code); ``item`` carries everything the
    job reads — the same purity contract as
    :func:`repro.exec.pool.parallel_map`.
    """

    fn: Callable[[Any], Any]
    item: Any


#: Cap on the text a :class:`JobFailure` ships (error repr and
#: traceback each).  A crashing job with a huge locals dump must not
#: bloat broker memory or driver logs; see :func:`truncate_failure_text`.
MAX_FAILURE_TEXT = 16_000


def truncate_failure_text(text: str, limit: int = MAX_FAILURE_TEXT) -> str:
    """Bound failure text, keeping the head and the tail.

    The head carries the exception type and entry frames, the tail the
    innermost frames — the two ends a reader actually needs; the elided
    middle is announced in place.
    """
    if limit <= 0 or len(text) <= limit:
        return text
    keep = max((limit - 60) // 2, 1)
    omitted = len(text) - 2 * keep
    return (
        f"{text[:keep]}\n... [{omitted} characters truncated] ...\n"
        f"{text[-keep:]}"
    )


@dataclass(frozen=True)
class JobFailure:
    """A job that raised, shipped back to the driver for re-raising.

    Both fields are bounded by the shipping worker
    (:func:`truncate_failure_text`), so a pathological traceback can
    never balloon the broker's result store.
    """

    error: str
    traceback: str


class Broker:
    """The broker's whole state machine, one lock around all of it.

    Methods are invoked concurrently from the manager server's
    per-connection threads; every public method takes the lock, mutates
    under it, and returns plain picklable values.
    """

    def __init__(
        self,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        cache_max_bytes: Optional[int] = DEFAULT_CACHE_MAX_BYTES,
        clock: Callable[[], float] = time.monotonic,
        batch_ttl: Optional[float] = None,
        schedule: str = "fifo",
        lease_target: float = DEFAULT_LEASE_TARGET,
        cost_model: Optional[CostModel] = None,
        cost_model_path: Optional[str] = None,
        history_capacity: int = DEFAULT_HISTORY_CAPACITY,
    ) -> None:
        if lease_timeout <= 0:
            raise ReproError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        if schedule not in ("fifo", "cost"):
            raise ReproError(
                f"schedule must be 'fifo' or 'cost', got {schedule!r}"
            )
        if lease_target <= 0:
            raise ReproError(
                f"lease_target must be > 0, got {lease_target}"
            )
        self.lease_timeout = float(lease_timeout)
        self.schedule = schedule
        self.lease_target = float(lease_target)
        # The scheduler's runtime predictor: warm-started from a saved
        # state when `cost_model_path` exists, refined by every
        # completion (FIFO mode included — observing is free and makes
        # the *next* cost-scheduled fleet start warm), and periodically
        # re-persisted to the same path.
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.cost_model_path = cost_model_path
        if cost_model_path is not None:
            self.cost_model.load(cost_model_path)
        self._unsaved_observations = 0
        # A live driver polls its batch every few hundredths of a
        # second, so a batch unpolled for this long belongs to a dead
        # (or partitioned) driver: drop it, or a long-lived broker
        # accumulates orphaned payloads/results until OOM while
        # workers burn CPU on jobs nobody will fetch.
        self.batch_ttl = (
            float(batch_ttl)
            if batch_ttl is not None
            else max(30.0 * self.lease_timeout, 300.0)
        )
        self._clock = clock
        self._lock = threading.Lock()
        # Queue state.
        self._pending: deque = deque()  # job ids awaiting a lease
        self._payloads: Dict[JobId, JobPayload] = {}
        self._leases: Dict[JobId, str] = {}  # job id -> worker id
        self._started: set = set()  # leased jobs whose execution began
        # Scheduler state: per-job features/predictions (cost batches
        # only predict; features are kept for every batch that shipped
        # them, so completions train the model under either policy) and
        # start times for the runtime fallback when a completion
        # arrives without a worker-measured runtime.
        self._features: Dict[JobId, Optional[Dict[str, Any]]] = {}
        self._predicted: Dict[JobId, float] = {}
        self._started_at: Dict[JobId, float] = {}
        self._batch_totals: Dict[str, int] = {}
        self._results: Dict[str, Dict[int, Any]] = {}
        self._batch_polled: Dict[str, float] = {}  # batch -> last poll
        self._workers: Dict[str, float] = {}  # worker id -> last beat
        # Shared cache store (opaque blobs, LRU-bounded).
        self._cache: "OrderedDict[str, bytes]" = OrderedDict()
        self._cache_bytes = 0
        self.cache_max_bytes = cache_max_bytes
        # Counters live in a broker-local, always-enabled registry —
        # the single source stats(), cache_stats() and obs_snapshot()
        # all read, so the three views can never disagree about what a
        # counter means.  Metric objects are fetched once here; the hot
        # paths below just .inc() them (all mutation happens under
        # self._lock, which is what makes each snapshot consistent).
        self.metrics = MetricsRegistry(enabled=True)
        self._c_steals = self.metrics.counter("broker.steals")
        self._c_reaped = self.metrics.counter("broker.reaped_jobs")
        self._c_completed = self.metrics.counter("broker.completed")
        self._c_dropped = self.metrics.counter("broker.dropped_batches")
        # Scheduler/transport telemetry (the `dist top` rows).
        self._c_lease_grants = self.metrics.counter("broker.lease_grants")
        self._c_lease_jobs = self.metrics.counter("broker.lease_jobs")
        self._c_lease_resize = self.metrics.counter("broker.lease_resize")
        self._c_pinned_leases = self.metrics.counter("broker.pinned_leases")
        self._c_batched_uploads = self.metrics.counter(
            "broker.batched_uploads"
        )
        self._c_batched_jobs = self.metrics.counter("broker.batched_jobs")
        self._c_cache_gets = self.metrics.counter("broker.cache.gets")
        self._c_cache_hits = self.metrics.counter("broker.cache.hits")
        self._c_cache_puts = self.metrics.counter("broker.cache.puts")
        self._c_cache_evictions = self.metrics.counter(
            "broker.cache.evictions"
        )
        # Completion latency distribution (worker-measured runtimes,
        # broker-clock fallback) — the `dist top` latency row and the
        # /metrics summary quantiles.
        self._h_runtime = self.metrics.histogram("broker.job_runtime_seconds")
        # Sampled-snapshot ring: obs_sample() records here so SSE
        # clients reconnecting mid-stream can backfill what they missed.
        self.history = SnapshotHistory(history_capacity)
        # Fleet telemetry: per-worker metric deltas shipped on
        # heartbeats/completions.  Reaped workers keep their totals
        # (marked dead) so fleet sums stay correct across deaths.
        self._worker_metrics: Dict[str, Dict[str, Any]] = {}

    # -- queue protocol ------------------------------------------------

    def submit(
        self,
        batch_id: str,
        payloads: List[JobPayload],
        features: Optional[List[Optional[Dict[str, Any]]]] = None,
        schedule: Optional[str] = None,
    ) -> int:
        """Register one ordered batch of jobs; returns the batch size.

        ``features`` (parallel to ``payloads``) are the driver-extracted
        scheduler features — the broker never introspects payloads,
        which may cross the wire compressed.  ``schedule`` overrides
        the broker's default policy for this batch; under ``"cost"``
        the batch is *enqueued* longest-predicted-first (LPT), while
        job ids, result indices and the driver's merge order stay the
        submission order — dispatch order is scheduling, not
        semantics.  Python's sort is stable, so jobs the model cannot
        tell apart keep their submission order and a cold-start cost
        batch dispatches exactly like FIFO.
        """
        if schedule is not None and schedule not in ("fifo", "cost"):
            raise ReproError(
                f"schedule must be 'fifo' or 'cost', got {schedule!r}"
            )
        with self._lock:
            if batch_id in self._batch_totals:
                raise ReproError(f"batch {batch_id!r} already submitted")
            self._batch_totals[batch_id] = len(payloads)
            self._results[batch_id] = {}
            self._batch_polled[batch_id] = self._clock()
            policy = schedule if schedule is not None else self.schedule
            order = list(range(len(payloads)))
            if features is not None and len(features) == len(payloads):
                for index in order:
                    self._features[(batch_id, index)] = features[index]
            if policy == "cost":
                for index in order:
                    job_id = (batch_id, index)
                    self._predicted[job_id] = self.cost_model.predict(
                        self._features.get(job_id)
                    )
                order.sort(key=lambda i: -self._predicted[(batch_id, i)])
            for index in order:
                job_id = (batch_id, index)
                self._payloads[job_id] = payloads[index]
                self._pending.append(job_id)
            return len(payloads)

    def pull(
        self, worker_id: str, max_jobs: int = 1
    ) -> List[Tuple[JobId, JobPayload]]:
        """Lease up to ``max_jobs`` jobs to one worker (steals if idle)."""
        with self._lock:
            self._beat(worker_id)
            self._reap()
            granted: List[Tuple[JobId, JobPayload]] = []
            while len(granted) < max_jobs and self._pending:
                job_id = self._pending.popleft()
                if job_id not in self._payloads or job_id in self._leases:
                    continue  # dropped batch / duplicate re-enqueue
                self._leases[job_id] = worker_id
                granted.append((job_id, self._payloads[job_id]))
            if not granted:
                stolen = self._steal_for(worker_id)
                if stolen is not None:
                    granted.append(stolen)
            return granted

    def lease_jobs(
        self, worker_id: str, max_jobs: int = 1
    ) -> Dict[str, Any]:
        """Cost-aware lease: the broker sizes it, and may pin it.

        Returns ``{"jobs": [(job_id, payload), ...], "pinned": bool}``.
        For plain FIFO jobs this grants at most ``max_jobs`` — exactly
        :meth:`pull`.  Jobs carrying a cost prediction are instead
        granted until their predicted runtimes sum past
        ``lease_target`` (or :data:`LEASE_MAX_JOBS`): long jobs lease
        alone, cheap jobs lease in bulk, and either way one pull RPC
        hands out ≈``lease_target`` seconds of work.

        A lease whose jobs are all predicted-cheap (total ≤
        ``lease_target``) comes back **pinned**: the broker marks the
        jobs started here and now, so the worker skips one ``start()``
        RPC per job.  The trade is deliberate and bounded — pinned
        jobs are invisible to steals (they read as running), and a
        worker death re-runs up to one lease_target of work after the
        reap (re-enqueue and duplicate-completion paths are shared
        with ``start()``-ed jobs, so the determinism contract is
        untouched).  Stolen jobs are never pinned: the victim may race
        the thief, and ``start()`` is the arbiter.
        """
        with self._lock:
            self._beat(worker_id)
            self._reap()
            granted: List[Tuple[JobId, JobPayload]] = []
            predicted_total = 0.0
            cost_jobs = 0
            while self._pending and len(granted) < LEASE_MAX_JOBS:
                job_id = self._pending[0]
                if job_id not in self._payloads or job_id in self._leases:
                    self._pending.popleft()
                    continue  # dropped batch / duplicate re-enqueue
                predicted = self._predicted.get(job_id)
                if granted:
                    if predicted is None:
                        if len(granted) >= max_jobs:
                            break
                    elif predicted_total + predicted > self.lease_target:
                        break
                self._pending.popleft()
                self._leases[job_id] = worker_id
                granted.append((job_id, self._payloads[job_id]))
                if predicted is not None:
                    predicted_total += predicted
                    cost_jobs += 1
            pinned = False
            if granted:
                self._c_lease_grants.inc()
                self._c_lease_jobs.inc(len(granted))
                if cost_jobs and len(granted) != max_jobs:
                    self._c_lease_resize.inc()
                if (
                    cost_jobs == len(granted)
                    and predicted_total <= self.lease_target
                ):
                    pinned = True
                    self._c_pinned_leases.inc()
                    now = self._clock()
                    for job_id, _ in granted:
                        self._started.add(job_id)
                        self._started_at.setdefault(job_id, now)
            else:
                stolen = self._steal_for(worker_id)
                if stolen is not None:
                    granted.append(stolen)
            return {"jobs": granted, "pinned": pinned}

    def _steal_for(
        self, thief: str
    ) -> Optional[Tuple[JobId, JobPayload]]:
        """Reassign one unstarted lease from the most-loaded worker."""
        by_victim: Dict[str, List[JobId]] = {}
        for job_id, owner in self._leases.items():
            if owner != thief and job_id not in self._started:
                by_victim.setdefault(owner, []).append(job_id)
        if not by_victim:
            return None
        victim = max(by_victim, key=lambda w: len(by_victim[w]))
        # Steal the tail of the victim's lease (its last-pulled job):
        # the victim works its lease front to back, so the tail is the
        # job it would reach last — the least likely to race a start().
        job_id = max(by_victim[victim])
        self._leases[job_id] = thief
        self._c_steals.inc()
        return job_id, self._payloads[job_id]

    def start(self, worker_id: str, job_id: JobId) -> bool:
        """Whether ``worker_id`` still owns the lease and may execute.

        Refreshes liveness but never *registers*: a reaped worker
        announcing a stale job must not resurrect as a phantom (see
        :meth:`complete`).
        """
        with self._lock:
            self._beat(worker_id, register=False)
            job_id = tuple(job_id)
            if self._leases.get(job_id) != worker_id:
                return False  # stolen, reaped or already completed
            self._started.add(job_id)
            self._started_at.setdefault(job_id, self._clock())
            return True

    def complete(
        self,
        worker_id: str,
        job_id: JobId,
        result: Any,
        metrics: Optional[Dict[str, Any]] = None,
        runtime: Optional[float] = None,
    ) -> None:
        """Store one job's result (idempotent across duplicate runs).

        A worker reaped mid-result-upload lands here *after* its jobs
        were re-enqueued: the late completion must neither resurrect
        the reaped worker (``register=False`` — a phantom in
        ``_workers`` would inflate the live-worker count the driver's
        no-progress guard reads, and be "reaped" again next cycle) nor
        double-count — the first result for an index wins and
        increments ``completed`` exactly once; every duplicate returns
        before any counter.  The worker re-registers honestly on its
        next ``pull``.

        ``runtime`` is the worker's measured wall time for the job; it
        (or, failing that, the broker-clock ``start``→``complete``
        span) trains the scheduler's cost model.
        """
        with self._lock:
            self._beat(worker_id, register=False)
            if metrics is not None:
                self._merge_worker_metrics(worker_id, metrics)
            self._complete_locked(job_id, result, runtime)

    def complete_many(
        self,
        worker_id: str,
        completions: List[Tuple[JobId, Any, Optional[float]]],
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store a worker's buffered ``(job_id, result, runtime)`` batch.

        One RPC replaces N ``complete()`` round-trips; each element
        lands through the same idempotent per-job path, so a batch
        replayed after a reconnect (the worker cannot know whether the
        first upload landed before the connection died) stores nothing
        twice.  Partial novelty is fine too: the duplicate elements
        no-op, the new ones land.
        """
        with self._lock:
            self._beat(worker_id, register=False)
            if metrics is not None:
                self._merge_worker_metrics(worker_id, metrics)
            self._c_batched_uploads.inc()
            self._c_batched_jobs.inc(len(completions))
            for job_id, result, runtime in completions:
                self._complete_locked(job_id, result, runtime)

    def _complete_locked(
        self, job_id: JobId, result: Any, runtime: Optional[float]
    ) -> None:
        """Store one result and train the cost model (lock held)."""
        batch_id, index = job_id
        job_id = (batch_id, index)
        observed = runtime
        if observed is None and job_id in self._started_at:
            observed = self._clock() - self._started_at[job_id]
        results = self._results.get(batch_id)
        if results is None or index in results:
            self._forget_job(job_id)  # dropped batch / duplicate
            return
        results[index] = result
        self._c_completed.inc()
        if observed is not None:
            self._h_runtime.observe(observed)
            self.cost_model.observe(
                self._features.get(job_id),
                observed,
                predicted=self._predicted.get(job_id),
            )
            self._maybe_save_cost_model()
        self._forget_job(job_id)

    def _maybe_save_cost_model(self) -> None:
        """Persist the model every few observations (lock held).

        Best-effort by design: the model is a scheduling hint, so a
        read-only or vanished directory must never fail a completion.
        """
        if self.cost_model_path is None:
            return
        self._unsaved_observations += 1
        if self._unsaved_observations < 16:
            return
        self._unsaved_observations = 0
        try:
            self.cost_model.save(self.cost_model_path)
        except OSError:
            pass

    def cost_snapshot(self) -> Dict[str, Any]:
        """The cost model's persistable state (drivers journal it)."""
        with self._lock:
            return self.cost_model.to_state()

    def cost_seed(self, state: Dict[str, Any]) -> bool:
        """Warm-start the model from a driver-supplied state or bench.

        Accepts either a :meth:`CostModel.to_state` snapshot (journaled
        by a previous ``repro dist run``) or a pytest-benchmark JSON
        dict (``BENCH_*.json``) to seed scenario priors from.
        """
        with self._lock:
            if isinstance(state, dict) and "benchmarks" in state:
                return self.cost_model.seed_from_bench(state) > 0
            return self.cost_model.from_state(state)

    def cost_save(self) -> bool:
        """Persist the model to ``cost_model_path`` now (if configured)."""
        with self._lock:
            if self.cost_model_path is None:
                return False
            self.cost_model.save(self.cost_model_path)
            return True

    def heartbeat(
        self,
        worker_id: str,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record liveness (workers beat from a side thread mid-job).

        ``metrics``, when present, is a delta envelope
        ``{"counters": {name: increment}, "gauges": {name: level}}``
        from the worker's local registry — merged here under the queue
        lock so the broker's fleet view moves atomically with liveness.
        """
        with self._lock:
            self._beat(worker_id)
            if metrics is not None:
                self._merge_worker_metrics(worker_id, metrics)

    def fetch_ready(self, batch_id: str, start: int) -> List[Any]:
        """The contiguous completed results from index ``start`` on.

        The driver's poll loop; also drives reaping, so dead workers
        are detected even while every surviving worker is busy.
        """
        with self._lock:
            self._reap()
            results = self._results.get(batch_id)
            if results is None:
                raise ReproError(f"unknown batch {batch_id!r}")
            self._batch_polled[batch_id] = self._clock()
            ready: List[Any] = []
            index = start
            while index in results:
                ready.append(results[index])
                index += 1
            return ready

    def batch_status(self, batch_id: str) -> Tuple[int, int]:
        """``(completed, total)`` for one batch."""
        with self._lock:
            if batch_id not in self._batch_totals:
                raise ReproError(f"unknown batch {batch_id!r}")
            self._batch_polled[batch_id] = self._clock()
            return (
                len(self._results[batch_id]),
                self._batch_totals[batch_id],
            )

    def drop_batch(self, batch_id: str) -> None:
        """Forget one batch entirely (results, pending and leased jobs)."""
        with self._lock:
            self._drop_batch(batch_id)

    def config(self) -> Dict[str, Any]:
        """Broker parameters workers read at connect time."""
        with self._lock:
            return {
                "lease_timeout": self.lease_timeout,
                "schedule": self.schedule,
                "lease_target": self.lease_target,
            }

    def stats(self) -> Dict[str, Any]:
        """Queue diagnostics (tests, the fleet driver's summary line).

        One lock acquisition around every read: the returned dict is a
        consistent point-in-time view (counters used to be plain
        attributes readable mid-update between RPCs).
        """
        with self._lock:
            return self._stats_locked()

    def _stats_locked(self) -> Dict[str, Any]:
        return {
            "workers": len(self._workers),
            "pending": len(self._pending),
            "leased": len(self._leases),
            "batches": len(self._batch_totals),
            "completed": self._c_completed.value,
            "steals": self._c_steals.value,
            "reaped_jobs": self._c_reaped.value,
            "dropped_batches": self._c_dropped.value,
            "schedule": self.schedule,
            "lease_grants": self._c_lease_grants.value,
            "lease_jobs": self._c_lease_jobs.value,
            "lease_resizes": self._c_lease_resize.value,
            "pinned_leases": self._c_pinned_leases.value,
            "batched_uploads": self._c_batched_uploads.value,
            "batched_jobs": self._c_batched_jobs.value,
        }

    def _scheduler_snapshot_locked(self) -> Dict[str, Any]:
        """Scheduler/transport telemetry for ``dist top``/``obs dump``.

        Derived from the same counters as :meth:`_stats_locked` under
        the same lock hold — one metrics path, two renderings.
        """
        grants = self._c_lease_grants.value
        completed = self._c_completed.value
        batched = self._c_batched_jobs.value
        return {
            "schedule": self.schedule,
            "lease_target": self.lease_target,
            "cost": self.cost_model.stats(),
            "mean_lease_size": (
                self._c_lease_jobs.value / grants if grants else None
            ),
            "lease_resizes": self._c_lease_resize.value,
            "pinned_leases": self._c_pinned_leases.value,
            "batched_uploads": self._c_batched_uploads.value,
            "batched_ratio": (
                min(batched / completed, 1.0) if completed else None
            ),
        }

    def obs_snapshot(self) -> Dict[str, Any]:
        """The whole fleet's telemetry in one lock acquisition.

        Queue stats, shared-cache stats, per-worker shipped metrics
        (dead workers included, marked ``alive: false``), fleet-wide
        counter totals, and the broker's own registry — all read under
        the same lock hold, so ``repro dist top`` and ``repro obs
        dump`` render a view where, e.g., ``completed`` and the
        per-worker job counts cannot contradict each other.
        """
        with self._lock:
            workers = {
                worker_id: {
                    "alive": record["alive"],
                    "counters": dict(record["counters"]),
                    "gauges": dict(record["gauges"]),
                    "last_beat": record["last_beat"],
                }
                for worker_id, record in self._worker_metrics.items()
            }
            fleet_counters: Dict[str, int] = {}
            for record in self._worker_metrics.values():
                for name, value in record["counters"].items():
                    fleet_counters[name] = (
                        fleet_counters.get(name, 0) + value
                    )
            return {
                "queue": self._stats_locked(),
                "scheduler": self._scheduler_snapshot_locked(),
                "cache": self._cache_stats_locked(),
                "workers": workers,
                "fleet": {"counters": fleet_counters},
                "broker": self.metrics.snapshot(),
                # Both clocks, deliberately: "monotonic" is the broker's
                # lease/heartbeat clock, so consumers compute worker
                # staleness (now - last_beat) without cross-host clock
                # agreement; "wall" lets a scraper date the sample.
                "time": {
                    "monotonic": self._clock(),
                    "wall": time.time(),
                },
            }

    def obs_sample(self) -> Dict[str, Any]:
        """One :meth:`obs_snapshot`, recorded into the history ring.

        The returned snapshot carries the ``seq`` stamped by the ring,
        so an HTTP client can later resume the SSE stream from exactly
        this sample via :meth:`obs_history`.
        """
        snapshot = self.obs_snapshot()
        self.history.record(snapshot)
        return snapshot

    def obs_history(
        self, since: int = 0, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Recorded samples with ``seq`` greater than ``since``."""
        return self.history.since(since, limit)

    # -- internals (call with the lock held) ---------------------------

    def _beat(self, worker_id: str, register: bool = True) -> None:
        """Record liveness.  ``register=False`` only refreshes workers
        already known — reaped workers stay reaped until they pull."""
        if register or worker_id in self._workers:
            self._workers[worker_id] = self._clock()
            record = self._worker_metrics.get(worker_id)
            if record is not None:
                record["alive"] = True
                record["last_beat"] = self._workers[worker_id]

    def _merge_worker_metrics(
        self, worker_id: str, metrics: Dict[str, Any]
    ) -> None:
        """Fold one shipped delta envelope into the fleet view.

        Counters accumulate (the worker ships increments since its last
        successful ship — see ``_MetricsShipper``); gauges overwrite.
        A reaped worker shipping a late delta still lands — its work
        happened — but stays marked dead until it re-registers via
        ``pull``.
        """
        record = self._worker_metrics.get(worker_id)
        if record is None:
            record = self._worker_metrics[worker_id] = {
                "alive": worker_id in self._workers,
                "counters": {},
                "gauges": {},
                "last_beat": self._clock(),
            }
        counters = record["counters"]
        for name, delta in metrics.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + delta
        record["gauges"].update(metrics.get("gauges", {}))

    def _drop_batch(self, batch_id: str) -> None:
        self._batch_totals.pop(batch_id, None)
        self._results.pop(batch_id, None)
        self._batch_polled.pop(batch_id, None)
        for job_id in [j for j in self._payloads if j[0] == batch_id]:
            self._forget_job(job_id)

    def _reap(self) -> None:
        """Re-enqueue every incomplete lease of heartbeat-dead workers,
        and drop batches whose driver stopped polling (died) entirely."""
        now = self._clock()
        for batch_id in [
            b
            for b, polled in self._batch_polled.items()
            if now - polled > self.batch_ttl
        ]:
            self._drop_batch(batch_id)
            self._c_dropped.inc()
        dead = [
            w
            for w, beat in self._workers.items()
            if now - beat > self.lease_timeout
        ]
        for worker_id in dead:
            del self._workers[worker_id]
            orphaned = sorted(
                j for j, owner in self._leases.items() if owner == worker_id
            )
            for job_id in orphaned:
                del self._leases[job_id]
                self._started.discard(job_id)
                # Drop the start timestamp too: the job will run again
                # elsewhere, and its observed runtime must not include
                # the dead worker's stall.
                self._started_at.pop(job_id, None)
            # Front of the queue, oldest index first: a re-enqueued job
            # is picked up before fresh work, bounding its extra delay.
            self._pending.extendleft(reversed(orphaned))
            self._c_reaped.inc(len(orphaned))
            # Keep the dead worker's shipped metric totals — fleet
            # sums must not shrink when a worker dies — but mark it so
            # the console shows it gone.
            record = self._worker_metrics.get(worker_id)
            if record is not None:
                record["alive"] = False

    def _forget_job(self, job_id: JobId) -> None:
        self._payloads.pop(job_id, None)
        self._leases.pop(job_id, None)
        self._started.discard(job_id)
        self._features.pop(job_id, None)
        self._predicted.pop(job_id, None)
        self._started_at.pop(job_id, None)

    # -- shared cache store --------------------------------------------

    def cache_get(self, key: str) -> Optional[bytes]:
        """The blob stored under one content address (``None`` = miss)."""
        with self._lock:
            self._c_cache_gets.inc()
            blob = self._cache.get(key)
            if blob is None:
                return None
            self._c_cache_hits.inc()
            self._cache.move_to_end(key)
            return blob

    def cache_put(self, key: str, blob: bytes) -> None:
        """Publish one blob (LRU-evicting beyond ``cache_max_bytes``)."""
        with self._lock:
            self._c_cache_puts.inc()
            old = self._cache.pop(key, None)
            if old is not None:
                self._cache_bytes -= len(old)
            self._cache[key] = blob
            self._cache_bytes += len(blob)
            if self.cache_max_bytes is None:
                return
            while self._cache_bytes > self.cache_max_bytes and self._cache:
                _, evicted = self._cache.popitem(last=False)
                self._cache_bytes -= len(evicted)
                self._c_cache_evictions.inc()

    def cache_stats(self) -> Dict[str, int]:
        """Shared-store counters (cross-worker hits show up in ``hits``)."""
        with self._lock:
            return self._cache_stats_locked()

    def _cache_stats_locked(self) -> Dict[str, int]:
        return {
            "entries": len(self._cache),
            "bytes": self._cache_bytes,
            "gets": self._c_cache_gets.value,
            "hits": self._c_cache_hits.value,
            "puts": self._c_cache_puts.value,
            "evictions": self._c_cache_evictions.value,
        }


# ----------------------------------------------------------------------
# Manager plumbing: export one Broker over TCP / connect to one.


class _StoppableServer(Server):
    """A manager server whose accepter thread can actually terminate.

    The stdlib accepter loops ``continue`` on *any* accept error, so
    closing the listener socket turns the (daemon) accepter into a busy
    spin — which is why PR 5 left the listener open on ``stop()``.
    This subclass makes a closed listener a clean exit signal instead:
    once :attr:`stop_event` is set, an accept failure means "shut
    down", so :meth:`BrokerServer.stop` can close the socket, free the
    port, and end the thread.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Accepted client connections and their serve threads, so
        # stop() can shut them down: a server-side socket whose serve
        # thread is blocked in recv() otherwise outlives close() and
        # keeps the port unbindable for a restarted broker.
        self._client_connections: set = set()
        self._client_threads: list = []
        self._client_lock = threading.Lock()
        self._accepter_thread: Optional[threading.Thread] = None

    def accepter(self):
        self._accepter_thread = threading.current_thread()
        while True:
            try:
                connection = self.listener.accept()
            except OSError:
                stop_event = getattr(self, "stop_event", None)
                if stop_event is not None and stop_event.is_set():
                    return  # listener closed by stop(): clean shutdown
                if getattr(self.listener, "_listener", None) is None:
                    return  # listener closed outright: nothing to accept
                continue
            handler = threading.Thread(
                target=self.handle_request, args=(connection,)
            )
            handler.daemon = True
            with self._client_lock:
                self._client_connections = {
                    c for c in self._client_connections if not c.closed
                }
                self._client_connections.add(connection)
                self._client_threads = [
                    t for t in self._client_threads if t.is_alive()
                ]
                self._client_threads.append(handler)
            handler.start()

    def close_clients(self) -> None:
        """Abort every live client connection and join its thread.

        Plain ``close()`` is not enough twice over.  First, on Linux a
        serve thread blocked in ``recv()`` holds a kernel reference to
        the socket, so closing the fd neither wakes the thread nor
        destroys the socket — ``shutdown(SHUT_RDWR)`` does wake it.
        Second, the close must be *abortive* (``SO_LINGER`` zero, RST
        instead of FIN): a graceful close parks the socket in
        FIN_WAIT2 until the remote driver notices, and FIN_WAIT2 —
        unlike TIME_WAIT — keeps the port unbindable, defeating
        "stop, then restart on the same port".  The woken serve thread
        closes its connection on exit (with the linger option already
        set, producing the RST); joining it makes "port is free" true
        by the time stop() returns, not merely eventually.  Clients
        see ``ConnectionResetError``, the exact transient signal their
        retry policies already handle.
        """
        with self._client_lock:
            connections, self._client_connections = (
                self._client_connections,
                set(),
            )
            threads, self._client_threads = self._client_threads, []
        for connection in connections:
            try:
                raw = socket.socket(fileno=os.dup(connection.fileno()))
            except OSError:
                continue  # already closed by its serve thread
            try:
                raw.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                raw.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            finally:
                raw.close()
        for thread in threads:
            thread.join(timeout=1.0)


class BrokerServer:
    """A :class:`Broker` listening on TCP.

    ``port=0`` binds an ephemeral port; the actual address is
    :attr:`address` either way.  ``serve_forever`` blocks (the CLI's
    ``repro dist serve``); ``start_in_thread`` runs the accept loop on
    a daemon thread (tests, benchmarks, in-process fleets).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        authkey: bytes = DEFAULT_AUTHKEY,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        cache_max_bytes: Optional[int] = DEFAULT_CACHE_MAX_BYTES,
        batch_ttl: Optional[float] = None,
        schedule: str = "fifo",
        lease_target: float = DEFAULT_LEASE_TARGET,
        cost_model_path: Optional[str] = None,
    ) -> None:
        self.broker = Broker(
            lease_timeout=lease_timeout,
            cache_max_bytes=cache_max_bytes,
            batch_ttl=batch_ttl,
            schedule=schedule,
            lease_target=lease_target,
            cost_model_path=cost_model_path,
        )
        broker = self.broker

        class _Manager(BaseManager):
            pass

        _Manager.register("get_broker", callable=lambda: broker)
        # BaseManager.get_server() hard-codes the stdlib Server class
        # (its busy-spinning accepter is the reason stop() used to leak
        # the listener), so build the stoppable server directly from
        # the same registry.
        self._server = _StoppableServer(
            _Manager._registry, (host, port), authkey, "pickle"
        )
        self.address: Tuple[str, int] = self._server.address
        self._thread: Optional[threading.Thread] = None

    def serve_forever(self) -> None:
        """Run the accept loop in this thread (blocks until stopped)."""
        self._server.serve_forever()

    def listen_fileno(self) -> Optional[int]:
        """The listener socket's fd, or ``None`` once closed.

        Anyone forking children out of the broker's process must close
        this fd in the child: an inherited copy keeps the port's kernel
        backlog accepting connections after :meth:`stop`, turning a
        cleanly stopped broker into a half-open zombie (see
        ``_probe_listener``).
        """
        try:
            return self._server.listener._listener._socket.fileno()
        except (AttributeError, OSError):
            return None

    def start_in_thread(self) -> "BrokerServer":
        """Run the accept loop on a daemon thread; returns ``self``."""

        def _serve() -> None:
            try:
                self._server.serve_forever()
            except SystemExit:
                # The manager's accept loop exits via sys.exit(0) when
                # stop() sets its event — a clean shutdown, not an
                # error to surface from a daemon thread.
                pass

        self._thread = threading.Thread(
            target=_serve,
            name="repro-dist-broker",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the serve loop and close the listener (port freed).

        Ordering matters: the stop event is set *first*, so when
        closing the listener wakes the blocked accepter its accept
        error reads as "shut down" (:class:`_StoppableServer`) instead
        of the stdlib's busy-spinning ``continue``.  After ``stop()``
        the port is immediately rebindable and no thread is left
        spinning — asserted by the shutdown regression tests.
        """
        # Final cost-model checkpoint: the periodic save only fires
        # every N observations, and the whole point of persistence is
        # that the *next* fleet inherits this one's learned rates.
        if self.broker.cost_model_path is not None:
            try:
                self.broker.cost_save()
            except OSError:
                pass
        stop_event = getattr(self._server, "stop_event", None)
        if stop_event is not None:
            stop_event.set()
        # shutdown() before close(): on Linux, close() does not wake a
        # thread blocked in accept() — the in-flight syscall keeps the
        # socket alive (and the port in LISTEN) until a connection
        # arrives.  shutdown(SHUT_RDWR) wakes it immediately.
        try:
            listener_socket = self._server.listener._listener._socket
        except AttributeError:
            listener_socket = None
        if listener_socket is not None:
            try:
                listener_socket.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        # A closed listener is itself an exit condition for the
        # accepter (covers stop() before serve_forever ever ran).
        try:
            self._server.listener.close()
        except OSError:
            pass
        # Server-side sockets of live clients must go too, or their
        # blocked serve threads keep the port busy and a restarted
        # broker cannot bind it.
        self._server.close_clients()
        accepter = getattr(self._server, "_accepter_thread", None)
        if accepter is not None:
            accepter.join(timeout=2.0)
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None


def _probe_listener(
    address: Tuple[str, int],
    timeout: float = 5.0,
    challenge_timeout: float = 2.0,
) -> None:
    """Reject dead, zombie, or self-connected endpoints pre-handshake.

    A dead broker must read as :class:`ConnectionRefusedError` —
    transient, retryable, fast — never as a hang, but two TCP artifacts
    can turn the manager handshake into exactly that:

    * On Linux, ``connect()`` to a just-freed ephemeral port can land
      on the connecting socket *itself* (source port == destination
      port, a TCP self-connect) — detected by comparing the probe's
      own address pair.
    * A *zombie backlog*: when another process still holds an inherited
      copy of a closed listener fd (forked workers of an in-process
      broker), the kernel keeps accepting connections into the backlog
      with nobody left to serve them.  A live manager server sends its
      ``#CHALLENGE`` message the moment it accepts, so a peer that
      stays silent for ``challenge_timeout`` is not a broker.

    The probe connection is discarded either way; the manager makes
    its own afterwards (safe from self-connect because a verified
    listener holds the port in LISTEN state).
    """
    with socket.create_connection(address, timeout=timeout) as probe:
        if probe.getsockname() == probe.getpeername():
            raise ConnectionRefusedError(
                f"no listener at {address[0]}:{address[1]} "
                f"(self-connected socket)"
            )
        probe.settimeout(challenge_timeout)
        try:
            greeting = probe.recv(1)
        except socket.timeout:
            raise ConnectionRefusedError(
                f"listener at {address[0]}:{address[1]} accepted but "
                f"never sent a challenge (stale backlog, no server)"
            ) from None
        if not greeting:
            raise ConnectionRefusedError(
                f"listener at {address[0]}:{address[1]} closed the "
                f"probe connection without a challenge"
            )


class BrokerConnection:
    """One client connection to a broker (driver or worker side).

    Holds the manager object alive for as long as the proxy is used;
    a proxy must only be used from the thread that created it (workers'
    heartbeat threads open their own connection).
    """

    def __init__(
        self, address, authkey: bytes = DEFAULT_AUTHKEY
    ) -> None:
        self.address = parse_address(address)

        class _Manager(BaseManager):
            pass

        _Manager.register("get_broker")
        self._manager = _Manager(address=self.address, authkey=authkey)
        faults.fire("connect", address=self.address)
        _probe_listener(self.address)
        self._manager.connect()
        self.broker = self._manager.get_broker()


def connect(address, authkey: bytes = DEFAULT_AUTHKEY) -> BrokerConnection:
    """Open one connection to the broker at ``address``."""
    return BrokerConnection(address, authkey=authkey)
