"""Module-level job functions the fleet ships to workers.

Distributed jobs are pickled *by reference* (module + name), so every
function here must be importable on both ends and a pure function of
its payload — same contract as :func:`repro.exec.pool.parallel_map`
workers, which is exactly what makes the distributed merge
bitwise-identical to the local one.

The one piece of ambient state is the **active cache**: the worker
loop installs its :class:`~repro.dist.cachetier.CacheTier` process-wide
before serving jobs, and :func:`run_block` builds its
:class:`~repro.exec.ExecutionContext` on whatever is installed
(``None`` on a plain local run).  The cache can only skip recomputing
pure results, so its presence or absence never changes a number —
that is asserted by the fleet equality tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import obs, scenarios
from repro.exec import ExecutionContext
from repro.exec.cache import entry_key


class ProcessMemo:
    """In-process fallback store behind the ``fetch`` cache interface.

    A local (non-fleet) matrix run has no worker tier installed, yet
    every replication block of a cell would otherwise repeat the same
    expensive sizing solve.  ``run_matrix`` installs one of these for
    the duration of a local run, deduplicating the solves within each
    process — the driver's serial loop, or each (forked) pool worker —
    under the same content addresses and the same ``should_store`` gate
    as the real tiers, so its presence can never change a number.
    Scoped to the run (installed before, uninstalled after), it can
    never grow past one run's distinct cells.
    """

    def __init__(self) -> None:
        self._store: Dict[str, Any] = {}
        self.hits = 0
        self.misses = 0

    # The full ResultCache store interface (key/lookup/put/fetch), so
    # a memo-backed context supports every runtime path — sweeps and
    # replicate address the store piecewise, not only through fetch.

    def key(self, kind, payload) -> str:
        return entry_key(kind, payload)

    def lookup(self, key):
        if key in self._store:
            self.hits += 1
            return True, self._store[key]
        self.misses += 1
        return False, None

    def put(self, key, value) -> None:
        self._store[key] = value

    def fetch(self, kind, payload, compute, should_store=None):
        key = self.key(kind, payload)
        hit, value = self.lookup(key)
        if hit:
            return value
        value = compute()
        if should_store is None or should_store(value):
            self.put(key, value)
        return value


#: Process-wide cache the worker loop installs (a CacheTier), consulted
#: by every fleet job running in this process.
_ACTIVE_CACHE: Optional[Any] = None


def set_active_cache(cache: Optional[Any]) -> Optional[Any]:
    """Install the process-wide job cache; returns the previous one."""
    global _ACTIVE_CACHE
    previous = _ACTIVE_CACHE
    _ACTIVE_CACHE = cache
    return previous


def active_cache() -> Optional[Any]:
    """The cache fleet jobs in this process currently run against."""
    return _ACTIVE_CACHE


def echo(item: Any) -> Any:
    """Identity job — the queue-overhead benchmark and smoke tests."""
    return item


def sleep_block(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Sleep for the payload's ``duration`` — a synthetic fleet cell.

    The makespan benchmark's stand-in for a real cell: runtime is the
    payload's declared duration, so the payload shape doubles as the
    scheduler feature source (``scenario`` + ``duration`` are exactly
    what :func:`repro.dist.costmodel.job_features` reads) and the cost
    model converges to near-perfect predictions within one pass.
    Returns a summary echoing the payload identity, so merged results
    still verify submission order.
    """
    import time

    time.sleep(float(payload["duration"]))
    return {
        "scenario": payload.get("scenario"),
        "index": payload.get("index"),
        "duration": float(payload["duration"]),
    }


@dataclass(frozen=True)
class BlockOutcome:
    """One replication block of one fleet cell, fully self-describing.

    ``results`` are the block's :class:`SimulationResult`\\ s in
    replication order (global indices ``start..stop-1``); the sizing
    fields repeat per block so the driver can cross-check that every
    block of a cell solved to the same allocation.
    """

    scenario: str
    budget: int
    start: int
    stop: int
    sizes: Dict[str, int]
    expected_loss_rate: float
    converged: bool
    results: List[Any]


def run_block(payload: Dict[str, Any]) -> BlockOutcome:
    """Size one scenario×budget cell and simulate one replication slice.

    The payload fully determines the outcome: scenario name, budget,
    the *global* replication layout (count, base seed, scheme — seeds
    are derived for the whole cell and indexed by the slice, so the
    block decomposition can never change a seed), horizon and
    simulation backend.  The sizing runs through the active cache when
    one is installed: on a fleet, the worker loop installs its
    :class:`CacheTier` (the first worker to converge a cell's sizing
    publishes it and every other block reuses it); for local runs,
    ``run_matrix`` installs a run-scoped :class:`ProcessMemo` instead.
    """
    from repro.sim.runner import (
        replication_seeds,
        simulate,
        simulate_block,
    )

    spec = scenarios.get(payload["scenario"])
    topology = spec.topology()
    context = ExecutionContext(
        jobs=1,
        cache=active_cache(),
        sim_backend=payload["sim_backend"],
    ).scoped(spec)
    sizing = context.size(
        topology, payload["budget"], sizer_kwargs=dict(spec.sizer_kwargs)
    )
    capacities = sizing.allocation.as_capacities()
    seeds = replication_seeds(
        payload["replications"],
        payload["base_seed"],
        payload["seed_scheme"],
    )
    if payload["sim_backend"] == "megabatch":
        # One kernel cell per block: every replication of the slice
        # advances in lockstep.  Per-replication streams are derived
        # from the global seed list, so the block results are bitwise
        # the per-seed batched runs the serial path would produce.
        results = simulate_block(
            topology,
            capacities,
            duration=payload["duration"],
            seeds=[
                seeds[r]
                for r in range(payload["start"], payload["stop"])
            ],
        )
    else:
        results = [
            simulate(
                topology,
                capacities,
                duration=payload["duration"],
                seed=seeds[r],
                backend=payload["sim_backend"],
            )
            for r in range(payload["start"], payload["stop"])
        ]
    # Scenario-labeled fleet telemetry: shipped to the broker with the
    # worker's other counters, split out by the Prometheus exposition
    # as repro_fleet_scenario_*_total{scenario=...}.  Counters only —
    # a disabled registry hands back shared no-op stubs, so the
    # zero-overhead contract holds.
    obs.counter("scenario.blocks.%s" % spec.name).inc()
    obs.counter("scenario.replications.%s" % spec.name).inc(
        int(payload["stop"]) - int(payload["start"])
    )
    return BlockOutcome(
        scenario=spec.name,
        budget=int(payload["budget"]),
        start=int(payload["start"]),
        stop=int(payload["stop"]),
        sizes=dict(sizing.allocation.sizes),
        expected_loss_rate=sizing.expected_loss_rate,
        converged=sizing.converged,
        results=results,
    )
