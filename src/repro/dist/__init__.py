"""``repro.dist`` — distributed work-stealing execution for fleets.

The experiment surface (scenarios × budgets × replications × policies)
is embarrassingly parallel but :mod:`repro.exec.pool` is pinned to one
host.  This package scales the same job payloads over many hosts with
the same determinism contract — a distributed run merges to
bitwise-identical results vs the serial/pooled local paths, regardless
of worker count, steal order, or worker death mid-job:

* :mod:`repro.dist.queue` — the broker: a work-stealing job queue over
  TCP (stdlib ``multiprocessing.managers``; no new dependencies) with
  heartbeats, dead-worker reaping, the shared cache store, the
  ``schedule="fifo"|"cost"`` dispatch policy and the batched/compressed
  wire transport;
* :mod:`repro.dist.costmodel` — :class:`CostModel`, the per-job
  runtime predictor (bench-seeded, EWMA-refined, JSON-persisted)
  behind cost scheduling and adaptive lease sizing;
* :mod:`repro.dist.worker` — the worker loop (``repro dist worker``);
* :mod:`repro.dist.executor` — :class:`DistExecutor`, the driver-side
  handle that plugs into :class:`~repro.exec.ExecutionContext` behind
  the same interface as the local pool;
* :mod:`repro.dist.cachetier` — the read-through/write-through shared
  cache tier layered over :class:`~repro.exec.ResultCache`;
* :mod:`repro.dist.fleet` — the fleet driver (``repro dist run``)
  enumerating registry scenarios into a job matrix;
* :mod:`repro.dist.journal` — :class:`RunJournal`, the checkpoint
  store behind ``repro dist run --journal/--resume``.

See ``docs/distributed.md`` for the protocol and the contracts, and
``docs/robustness.md`` for the failure modes and recovery machinery.
"""

from repro.dist.cachetier import CacheTier
from repro.dist.costmodel import CostModel, job_features
from repro.dist.executor import DistExecutor
from repro.dist.fleet import FleetCell, FleetOutcome, build_matrix, run_matrix
from repro.dist.journal import RunJournal
from repro.dist.queue import (
    DEFAULT_AUTHKEY,
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_PORT,
    Broker,
    BrokerServer,
    JobFailure,
    JobPayload,
    WireBlob,
    connect,
    parse_address,
    wire_pack,
    wire_unpack,
)
from repro.dist.worker import worker_loop

__all__ = [
    "Broker",
    "BrokerServer",
    "CacheTier",
    "CostModel",
    "DEFAULT_AUTHKEY",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_PORT",
    "DistExecutor",
    "FleetCell",
    "FleetOutcome",
    "JobFailure",
    "JobPayload",
    "RunJournal",
    "WireBlob",
    "build_matrix",
    "connect",
    "job_features",
    "parse_address",
    "run_matrix",
    "wire_pack",
    "wire_unpack",
    "worker_loop",
]
