"""The fleet driver: a scenario×budget×replication matrix as a job list.

``run_matrix`` enumerates registry scenarios into the flat, ordered
job list the queue executes — one :func:`repro.dist.jobs.run_block`
payload per (scenario, budget, replication block) — and merges the
block outcomes back into per-cell results *by submission order*.  The
same function body runs the matrix serially (``executor=None,
jobs=1``), on the local pool (``jobs=N``) or on a broker fleet
(``executor=DistExecutor(...)``): the acceptance contract is that all
three produce bitwise-identical :class:`FleetOutcome` payloads, which
``repro dist run --verify-local`` asserts end to end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import scenarios
from repro.errors import ReproError
from repro.exec.cache import canonicalize
from repro.exec.pool import parallel_map
from repro.dist import jobs as dist_jobs
from repro.dist.jobs import BlockOutcome, ProcessMemo, run_block
from repro.sim.runner import ReplicationSummary

__all__ = ["FleetCell", "FleetOutcome", "build_matrix", "run_matrix"]


@dataclass(frozen=True)
class FleetCell:
    """One (scenario, budget) cell: its sizing and its replications."""

    scenario: str
    budget: int
    sizes: Dict[str, int]
    expected_loss_rate: float
    converged: bool
    summary: ReplicationSummary


@dataclass
class FleetOutcome:
    """All cells of one matrix run, in enumeration order."""

    cells: List[FleetCell]

    def to_jsonable(self) -> Any:
        """Canonical JSON-compatible form of every cell.

        Full float precision (shortest round-trip repr), so two
        outcomes are bitwise-identical iff their JSON forms are equal —
        the form ``--verify-local`` and the CI smoke compare.
        """
        return canonicalize(self.cells)

    def write_json(self, path) -> None:
        """Write the canonical JSON artifact of the run."""
        with open(path, "w") as fh:
            json.dump(self.to_jsonable(), fh, sort_keys=True, indent=2)
            fh.write("\n")

    def render(self) -> str:
        """The human-readable matrix table (the CLI artifact)."""
        lines = [
            f"{'scenario':24s} {'budget':>6s} {'reps':>4s} "
            f"{'mean loss':>10s} {'+/-':>8s} {'model rate':>10s}"
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.scenario:24s} {cell.budget:6d} "
                f"{cell.summary.num_replications:4d} "
                f"{cell.summary.mean_total_loss():10.1f} "
                f"{cell.summary.std_total_loss():8.1f} "
                f"{cell.expected_loss_rate:10.6f}"
                + ("" if cell.converged else "  [fixed point not converged]")
            )
        return "\n".join(lines)


def build_matrix(
    scenario_names: Sequence[str],
    budgets: Optional[Sequence[int]] = None,
    replications: int = 3,
    duration: float = 500.0,
    base_seed: int = 0,
    seed_scheme: str = "legacy",
    sim_backend: str = "batched",
    block_reps: int = 1,
) -> List[Dict[str, Any]]:
    """The ordered job payload list of one matrix.

    ``budgets=None`` uses each scenario's declared budget axis;
    an explicit list applies to every scenario.  ``block_reps`` sets
    the replication-slice size per job — smaller blocks give the queue
    more to balance (and more blocks sharing each cell's cached
    sizing), at proportionally more per-job round-trips.

    Scenarios and budgets are deduplicated (first spelling wins, by
    *canonical* scenario name, so family aliases collapse too): a cell
    enumerated twice would otherwise merge into one summary with
    duplicated identical replications, silently skewing its spread.
    """
    if not scenario_names:
        raise ReproError("fleet matrix needs at least one scenario")
    if replications < 1:
        raise ReproError(
            f"replications must be >= 1, got {replications}"
        )
    if block_reps < 1:
        raise ReproError(f"block_reps must be >= 1, got {block_reps}")
    specs = list(
        {
            spec.name: spec
            for spec in (scenarios.get(name) for name in scenario_names)
        }.values()
    )
    payloads: List[Dict[str, Any]] = []
    for spec in specs:
        axis = list(
            dict.fromkeys(
                int(b) for b in (budgets if budgets else spec.budgets)
            )
        )
        for budget in axis:
            for start in range(0, replications, block_reps):
                payloads.append(
                    {
                        "scenario": spec.name,
                        "budget": budget,
                        "replications": int(replications),
                        "start": start,
                        "stop": min(start + block_reps, replications),
                        "duration": float(duration),
                        "base_seed": int(base_seed),
                        "seed_scheme": seed_scheme,
                        "sim_backend": sim_backend,
                    }
                )
    return payloads


def _merge_blocks(blocks: List[BlockOutcome]) -> FleetOutcome:
    """Group ordered block outcomes back into per-cell results.

    Blocks arrive in submission order (the pool/queue merge is by
    index), so a cell's blocks are contiguous and its replication
    slices concatenate in seed order.  Every block of a cell re-reports
    the sizing; disagreement would mean a job was not a pure function
    of its payload, which is worth failing loudly over.
    """
    cells: List[FleetCell] = []
    index = 0
    while index < len(blocks):
        first = blocks[index]
        results: List[Any] = []
        group_end = index
        while (
            group_end < len(blocks)
            and blocks[group_end].scenario == first.scenario
            and blocks[group_end].budget == first.budget
        ):
            block = blocks[group_end]
            if block.sizes != first.sizes:
                raise ReproError(
                    f"non-deterministic sizing for cell "
                    f"{first.scenario!r} budget {first.budget}: "
                    f"{block.sizes} != {first.sizes}"
                )
            results.extend(block.results)
            group_end += 1
        cells.append(
            FleetCell(
                scenario=first.scenario,
                budget=first.budget,
                sizes=dict(first.sizes),
                expected_loss_rate=first.expected_loss_rate,
                converged=first.converged,
                summary=ReplicationSummary(results),
            )
        )
        index = group_end
    return FleetOutcome(cells=cells)


def run_matrix(
    scenario_names: Sequence[str],
    budgets: Optional[Sequence[int]] = None,
    replications: int = 3,
    duration: float = 500.0,
    base_seed: int = 0,
    seed_scheme: str = "legacy",
    sim_backend: str = "batched",
    block_reps: int = 1,
    jobs: int = 1,
    executor: Optional[Any] = None,
    on_result: Optional[Callable[[int, BlockOutcome], None]] = None,
    journal: Optional[Any] = None,
    schedule: Optional[str] = None,
) -> FleetOutcome:
    """Run one scenario×budget×replication matrix, merged by cell.

    ``executor`` (a :class:`~repro.dist.executor.DistExecutor`) fans
    the blocks over a broker fleet; ``jobs=N`` over the local pool;
    the default is the serial reference loop.  All three merge to
    bitwise-identical outcomes.  ``on_result(index, block)`` streams
    completed blocks in submission order.

    ``schedule`` ("fifo" or "cost") sets the fleet scheduling policy
    on the executor for this matrix: "cost" dispatches cells
    longest-predicted-first from the broker's cost model, which cuts
    the makespan of skewed matrices (see docs/distributed.md,
    Scheduling).  Dispatch order is invisible in the outcome — the
    merge stays by submission index, so the bitwise contract above is
    unaffected.  Ignored for local runs, which are already ordered.

    ``journal`` (a :class:`~repro.dist.journal.RunJournal`) makes the
    run resumable: it is bound to this matrix configuration (resume
    validates the config hash), already-journaled blocks are reused
    without recomputing, and every newly completed block is recorded
    atomically *as it streams in* — so a driver killed mid-run loses
    at most the blocks in flight.  ``on_result`` still fires for every
    block, journaled or fresh, in global submission order.
    """
    if schedule is not None and executor is not None:
        executor.schedule = schedule
    payloads = build_matrix(
        scenario_names,
        budgets=budgets,
        replications=replications,
        duration=duration,
        base_seed=base_seed,
        seed_scheme=seed_scheme,
        sim_backend=sim_backend,
        block_reps=block_reps,
    )
    blocks: List[Optional[BlockOutcome]] = [None] * len(payloads)
    todo_indices: List[int] = []
    if journal is not None:
        journal.bind(payloads)
        for index, payload in enumerate(payloads):
            hit, block = journal.lookup(payload)
            if hit:
                blocks[index] = block
            else:
                todo_indices.append(index)
    else:
        todo_indices = list(range(len(payloads)))

    # Stream on_result in *global* submission order: journaled blocks
    # and freshly computed ones interleave, so a block is emitted only
    # once the contiguous prefix before it is complete.
    emitted = 0

    def _flush() -> None:
        nonlocal emitted
        while emitted < len(blocks) and blocks[emitted] is not None:
            if on_result is not None:
                on_result(emitted, blocks[emitted])
            emitted += 1

    def _on_block(todo_position: int, block: BlockOutcome) -> None:
        index = todo_indices[todo_position]
        blocks[index] = block
        if journal is not None:
            journal.record(payloads[index], block)
        _flush()

    # Local paths get a run-scoped sizing memo (fleet workers install
    # their own CacheTier instead): each cell's sizing is solved once
    # per process, and the memo dies with the run — never accumulating
    # across calls.  Installed before the pool fan-out so forked pool
    # workers inherit (an empty) one too.
    memo_installed = executor is None and dist_jobs.active_cache() is None
    previous = (
        dist_jobs.set_active_cache(ProcessMemo()) if memo_installed else None
    )
    try:
        parallel_map(
            run_block,
            [payloads[index] for index in todo_indices],
            jobs=jobs,
            executor=executor,
            on_result=_on_block,
        )
    finally:
        if memo_installed:
            dist_jobs.set_active_cache(previous)
    _flush()
    return _merge_blocks(blocks)
