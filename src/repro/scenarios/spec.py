"""Declarative description of one evaluation scenario.

A :class:`ScenarioSpec` bundles everything an experiment driver needs to
run end to end on one architecture family: the topology builder, the
default budget axis, the sizer configuration, the simulation/calibration
horizons and the per-scenario policy knobs (the timeout-threshold
multiplier, the weighted-loss critical set).  Every driver in
:mod:`repro.experiments`, the CLI and the benchmarks resolve a spec by
name from :mod:`repro.scenarios.registry` instead of hardcoding the
network-processor testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.arch.topology import Topology, rebuilt_topology
from repro.errors import ReproError

#: Builder signature: ``builder(arch_seed, load_scale) -> Topology``.
TopologyBuilder = Callable[[int, float], Topology]


def scaled_topology(topology: Topology, load_scale: float) -> Topology:
    """Rebuild a topology with every flow's traffic scaled in mean rate.

    The generic load knob for builders without a native ``load_scale``
    parameter (the hand-written templates): structure, service rates and
    loss weights are preserved, each flow's traffic descriptor is
    replaced by ``descriptor.scaled(load_scale)``.

    At ``load_scale == 1.0`` the *same* topology object is returned,
    not a copy (builders construct a fresh instance per call, so the
    fast path never aliases shared state); callers who intend to
    mutate the result should copy via
    :func:`repro.arch.topology.rebuilt_topology` instead.
    """
    if load_scale <= 0:
        raise ReproError(f"load_scale must be > 0, got {load_scale}")
    if load_scale == 1.0:
        return topology
    return rebuilt_topology(
        topology,
        flow_traffic=lambda flow: flow.traffic.scaled(load_scale),
    )


def template_builder(factory: Callable[[], Topology]) -> TopologyBuilder:
    """Adapt a zero-argument template generator to the builder signature.

    Templates are fully deterministic, so ``arch_seed`` is ignored; the
    load knob is implemented by :func:`scaled_topology`.
    """

    def build(arch_seed: int, load_scale: float) -> Topology:
        return scaled_topology(factory(), load_scale)

    return build


@dataclass(frozen=True)
class ScenarioSpec:
    """One named evaluation scenario, declaratively.

    Attributes
    ----------
    name:
        Registry key (``repro scenarios list``, ``--scenario``).
    description:
        One-line summary shown by the CLI listing.
    builder:
        ``builder(arch_seed, load_scale) -> Topology``; the topology
        every driver of this scenario simulates and sizes.
    arch_seed:
        Default seed passed to the builder (deterministic templates
        ignore it).
    default_budget:
        Total buffer budget for single-budget drivers (figure3, the
        extension studies).
    budgets:
        Budget axis for sweep drivers (table1).
    sizer_kwargs:
        Extra :class:`~repro.core.sizing.BufferSizer` arguments applied
        to every sizing run of the scenario.
    calibration_duration:
        Horizon of the timeout-threshold calibration simulation.
    timeout_multiplier:
        Scales the calibrated mean buffer waiting time into the timeout
        threshold.  The paper fixes the threshold at "the average time
        spent by a request in a buffer" without saying how the average
        was measured; the netproc default (6.0) places the timeout
        policy's total loss at roughly twice the CTMDP configuration,
        the regime the paper's 50% claim implies.  Non-netproc scenarios
        calibrate their own regime here.
    default_duration / default_replications:
        Simulation horizon and replication count the paper-artefact
        drivers (figure3, table1, headline) fall back to when the
        caller passes ``None``; the lighter extension/ablation drivers
        keep their own quick defaults.
    critical_processors:
        Default critical set of the weighted-loss extension (``None``
        falls back to the first and last processor in report order).
    params:
        Parameters a parametric family resolved this spec from (part of
        the cache scope so distinct members never share entries).
    """

    name: str
    description: str
    builder: TopologyBuilder
    arch_seed: int = 2005
    default_budget: int = 160
    budgets: Tuple[int, ...] = (160, 320, 640)
    sizer_kwargs: Dict[str, Any] = field(default_factory=dict)
    calibration_duration: float = 3_000.0
    timeout_multiplier: float = 6.0
    default_duration: float = 3_000.0
    default_replications: int = 10
    critical_processors: Optional[Tuple[str, ...]] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ReproError("scenario name must be non-empty")
        if self.default_budget < 1:
            raise ReproError(
                f"default_budget must be >= 1, got {self.default_budget}"
            )
        if not self.budgets:
            raise ReproError(f"scenario {self.name!r} needs a budget axis")
        if self.timeout_multiplier <= 0:
            raise ReproError(
                f"timeout_multiplier must be > 0, "
                f"got {self.timeout_multiplier}"
            )

    # ------------------------------------------------------------------

    def topology(
        self,
        arch_seed: Optional[int] = None,
        load_scale: float = 1.0,
    ) -> Topology:
        """Build the scenario's topology (validated)."""
        seed = self.arch_seed if arch_seed is None else int(arch_seed)
        return self.builder(seed, float(load_scale))

    def cache_scope(self) -> Dict[str, Any]:
        """The scenario's contribution to execution-runtime cache keys.

        Scopes cached sizing and replication results per scenario: two
        scenarios never share entries even if their topologies happen to
        fingerprint identically (e.g. a registry rename or a parametric
        family whose members collide structurally).
        """
        return {"name": self.name, "params": dict(self.params)}
