"""The scenario registry: named scenarios plus parametric families.

Fixed scenarios are registered once at import (netproc, fig1, amba,
coreconnect); parametric families resolve patterned names such as
``random-mesh-<clusters>-<seed>`` or ``single-bus-<n>`` into freshly
built specs on demand, so sweeps and benches can enumerate arbitrarily
many instances without pre-registering each one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Union

from repro.arch.generators import GeneratorConfig, random_topology
from repro.arch.netproc import network_processor
from repro.arch.templates import (
    amba_like,
    coreconnect_like,
    paper_figure1,
    single_bus,
)
from repro.errors import ReproError
from repro.scenarios.spec import (
    ScenarioSpec,
    scaled_topology,
    template_builder,
)

_REGISTRY: Dict[str, ScenarioSpec] = {}
_FAMILIES: List["ScenarioFamily"] = []

#: The scenario every driver defaults to — the paper's testbed.
DEFAULT_SCENARIO = "netproc"


@dataclass(frozen=True)
class ScenarioFamily:
    """A parametric scenario family resolved by name pattern.

    ``resolver(name)`` returns a spec when the name belongs to the
    family, ``None`` otherwise; ``pattern`` is the human-readable
    template shown by ``repro scenarios list``, ``grammar`` spells out
    what each ``<parameter>`` placeholder accepts, and ``example`` is
    one concrete resolvable member name (the listing resolves it live,
    so a family whose example stops resolving fails loudly).
    """

    pattern: str
    description: str
    resolver: Callable[[str], Optional[ScenarioSpec]]
    grammar: str = ""
    example: str = ""


def register(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Register a fixed scenario under its name.

    Re-registering an existing name is an error unless ``replace=True``
    (projects overriding a built-in, tests injecting fixtures).
    """
    if not replace and spec.name in _REGISTRY:
        raise ReproError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def register_family(family: ScenarioFamily) -> ScenarioFamily:
    """Register a parametric family (consulted by :func:`get` in order)."""
    _FAMILIES.append(family)
    return family


def names() -> List[str]:
    """Sorted names of all fixed (non-parametric) scenarios."""
    return sorted(_REGISTRY)


def families() -> List[ScenarioFamily]:
    """The registered parametric families, in registration order."""
    return list(_FAMILIES)


def get(name: str) -> ScenarioSpec:
    """Resolve a scenario name: fixed registry first, then families."""
    if name in _REGISTRY:
        return _REGISTRY[name]
    for family in _FAMILIES:
        spec = family.resolver(name)
        if spec is not None:
            return spec
    known = ", ".join(names())
    patterns = ", ".join(f.pattern for f in _FAMILIES)
    raise ReproError(
        f"unknown scenario {name!r}; known scenarios: {known}; "
        f"parametric families: {patterns}"
    )


def resolve(scenario: Union[str, ScenarioSpec, None]) -> ScenarioSpec:
    """Coerce a name / spec / ``None`` (= default) to a spec."""
    if scenario is None:
        return get(DEFAULT_SCENARIO)
    if isinstance(scenario, ScenarioSpec):
        return scenario
    return get(scenario)


# ----------------------------------------------------------------------
# Built-in fixed scenarios.

register(
    ScenarioSpec(
        name="netproc",
        description=(
            "the paper's evaluation testbed: 16 packet engines on four "
            "data buses plus a control processor, 17 processors total"
        ),
        builder=lambda seed, scale: network_processor(
            seed=seed, load_scale=scale
        ),
        arch_seed=2005,
        default_budget=160,
        budgets=(160, 320, 640),
        calibration_duration=3_000.0,
        timeout_multiplier=6.0,
        critical_processors=("p1", "p16"),
    )
)

register(
    ScenarioSpec(
        name="fig1",
        description=(
            "the paper's Figure 1 sample SoC: 5 processors, 7 buses, "
            "4 bridges forming the four split subsystems of Figure 2"
        ),
        builder=template_builder(paper_figure1),
        default_budget=28,
        budgets=(20, 28, 40),
        calibration_duration=1_500.0,
    )
)

register(
    ScenarioSpec(
        name="amba",
        description=(
            "AMBA-style AHB/APB pair joined by one bridge; two masters, "
            "two peripherals"
        ),
        builder=template_builder(amba_like),
        default_budget=18,
        budgets=(12, 18, 24),
        calibration_duration=1_500.0,
    )
)

register(
    ScenarioSpec(
        name="coreconnect",
        description=(
            "CoreConnect-style PLB/OPB system with a dual bridge pair "
            "and a rigidly linked second processor bus"
        ),
        builder=template_builder(coreconnect_like),
        default_budget=20,
        budgets=(14, 20, 28),
        calibration_duration=1_500.0,
    )
)


# ----------------------------------------------------------------------
# Parametric families.

_RANDOM_MESH = re.compile(r"^random-mesh-(\d+)-(\d+)$")
_SINGLE_BUS = re.compile(r"^single-bus-(\d+)$")


def _resolve_random_mesh(name: str) -> Optional[ScenarioSpec]:
    match = _RANDOM_MESH.match(name)
    if match is None:
        return None
    clusters, seed = int(match.group(1)), int(match.group(2))
    if clusters < 1:
        raise ReproError(f"random-mesh needs >= 1 cluster, got {clusters}")
    # Canonical spelling: "random-mesh-04-7" and "random-mesh-4-7" are
    # the same member and must share one spec name (hence cache scope).
    name = f"random-mesh-{clusters}-{seed}"
    config = GeneratorConfig(num_clusters=clusters)

    def build(arch_seed, load_scale):
        return scaled_topology(
            random_topology(arch_seed, config), load_scale
        )

    owners = clusters * config.processors_per_cluster
    # Bridges (spanning tree + extras) own entry buffers too; scale the
    # default budget with the cluster count so members stay feasible.
    budget = max(8 * clusters + 8, 4 * owners)
    return ScenarioSpec(
        name=name,
        description=(
            f"random bridged mesh: {clusters} bus cluster(s), "
            f"{config.processors_per_cluster} processors each, seed {seed}"
        ),
        builder=build,
        arch_seed=seed,
        default_budget=budget,
        budgets=(budget, 2 * budget, 4 * budget),
        calibration_duration=1_500.0,
        params={"family": "random-mesh", "clusters": clusters, "seed": seed},
    )


def _resolve_single_bus(name: str) -> Optional[ScenarioSpec]:
    match = _SINGLE_BUS.match(name)
    if match is None:
        return None
    n = int(match.group(1))
    if n < 2:
        raise ReproError(f"single-bus needs >= 2 processors, got {n}")
    name = f"single-bus-{n}"  # canonical spelling (zero-padding aliases)

    def build(arch_seed, load_scale):
        return scaled_topology(single_bus(num_processors=n), load_scale)

    budget = 4 * n
    return ScenarioSpec(
        name=name,
        description=f"one bus, {n} processors, neighbour ring traffic",
        builder=build,
        default_budget=budget,
        budgets=(2 * n, budget, 8 * n),
        calibration_duration=1_000.0,
        params={"family": "single-bus", "processors": n},
    )


register_family(
    ScenarioFamily(
        pattern="random-mesh-<clusters>-<seed>",
        description=(
            "random bridged topology from repro.arch.generators: "
            "<clusters> bus clusters, spanning-tree bridges plus "
            "extras, deterministic from <seed>"
        ),
        resolver=_resolve_random_mesh,
        grammar=(
            "<clusters> = bus clusters, integer >= 1; "
            "<seed> = architecture seed, integer >= 0 "
            "(leading zeros canonicalise: random-mesh-04-7 == "
            "random-mesh-4-7)"
        ),
        example="random-mesh-2-7",
    )
)

register_family(
    ScenarioFamily(
        pattern="single-bus-<n>",
        description="minimal single-bus instance with <n> processors",
        resolver=_resolve_single_bus,
        grammar="<n> = processors on the bus, integer >= 2",
        example="single-bus-6",
    )
)
