"""``repro.scenarios`` — the declarative scenario layer.

One :class:`ScenarioSpec` describes everything a driver needs to run an
experiment end to end on one architecture family (topology builder,
budget axis, sizer/calibration config, per-scenario policy knobs); the
registry resolves names — fixed (``netproc``, ``fig1``, ``amba``,
``coreconnect``) and parametric (``random-mesh-<clusters>-<seed>``,
``single-bus-<n>``) — so every layer above (experiments, CLI, exec
cache keys, benchmarks) is scenario-generic:

>>> from repro import scenarios
>>> scenarios.names()
['amba', 'coreconnect', 'fig1', 'netproc']
>>> scenarios.get("random-mesh-3-7").topology().name
'random-7'
"""

from repro.scenarios.registry import (
    DEFAULT_SCENARIO,
    ScenarioFamily,
    families,
    get,
    names,
    register,
    register_family,
    resolve,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    scaled_topology,
    template_builder,
)

__all__ = [
    "DEFAULT_SCENARIO",
    "ScenarioFamily",
    "ScenarioSpec",
    "families",
    "get",
    "names",
    "register",
    "register_family",
    "resolve",
    "scaled_topology",
    "template_builder",
]
