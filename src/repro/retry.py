"""Capped exponential backoff with seeded jitter — the one retry loop.

Every transport edge of the distributed runtime — broker connects,
cache-tier fetch/publish, job submission, the driver's poll loop —
retries through a single :class:`RetryPolicy`, so backoff behaviour is
uniform, testable, and deterministic: the jitter sequence is a pure
function of the policy's seed, which is what lets the chaos suite
(:mod:`repro.faults`) assert *bitwise-identical* outcomes under
injected connection drops — the retry path may change timing, never a
number.

Only *transient* failures are retried (:func:`repro.errors.is_transient`
is the default classifier): a wrong authkey, a corrupt cache entry, or
a deterministic job exception fails immediately, because retrying a
fatal error just delays the diagnosis.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, List, Optional

from repro import obs
from repro.errors import ReproError, is_transient

__all__ = ["RetryPolicy", "DEFAULT_RETRY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: ``base * 2**i``, jittered, capped.

    Parameters
    ----------
    attempts:
        Total tries, including the first (``1`` disables retrying).
    base_delay:
        Sleep before the first retry (seconds).
    max_delay:
        Cap on any single sleep — the backoff is exponential up to
        here, then flat.
    jitter:
        Fraction of each delay drawn uniformly from ``[0, jitter)``
        and added, desynchronising a fleet of clients that all lost
        the same broker at the same instant.
    seed:
        Seed of the jitter stream.  The delays of one :meth:`call` are
        a pure function of ``(seed, attempt index)``, so retry timing
        is reproducible in tests and chaos runs.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ReproError(
                f"retry attempts must be >= 1, got {self.attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ReproError("retry delays must be >= 0")
        if not 0 <= self.jitter:
            raise ReproError(f"jitter must be >= 0, got {self.jitter}")

    def delays(self) -> List[float]:
        """The seeded sleep schedule between attempts (length
        ``attempts - 1``); element ``i`` precedes retry ``i + 1``."""
        rng = Random(self.seed)
        schedule = []
        for index in range(self.attempts - 1):
            delay = min(self.base_delay * (2.0 ** index), self.max_delay)
            schedule.append(delay * (1.0 + self.jitter * rng.random()))
        return schedule

    def call(
        self,
        fn: Callable[[], Any],
        classify: Callable[[BaseException], bool] = is_transient,
        describe: str = "",
        on_retry: Optional[Callable[[int, BaseException], None]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Run ``fn()``, retrying transient failures per the schedule.

        ``classify(exc)`` decides retryability (default: the library's
        transient-vs-fatal taxonomy); fatal errors and the final
        transient failure propagate unchanged.  ``on_retry(attempt,
        exc)`` observes each retry (the fault log plugs in here);
        ``sleep`` is injectable so tests never wait.
        """
        schedule = self.delays()
        for attempt in range(self.attempts):
            try:
                return fn()
            except BaseException as exc:
                if attempt >= len(schedule) or not classify(exc):
                    raise
                obs.counter("retry.retries").inc()
                if on_retry is not None:
                    on_retry(attempt + 1, exc)
                sleep(schedule[attempt])
        raise AssertionError("unreachable")  # pragma: no cover


#: The runtime's default policy: 4 tries over ~0.35-0.5 s — enough to
#: ride out a broker restart or a dropped TCP connection, short enough
#: that a genuinely dead broker fails fast.
DEFAULT_RETRY = RetryPolicy()
