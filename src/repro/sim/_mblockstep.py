"""Pure-numpy lockstep engine for the mega-batch lane.

The dependency-free fallback of the three mega-batch engines (numba >
C > numpy): instead of draining one replication at a time, every
super-step selects **one event per live replication** with vectorised
``(time, seq)`` argmin over the ``(R, S + B)`` calendar and dispatches
all of them with gather/scatter index arrays — arrivals, completions,
and a vectorised arbitration/timeout-retry grant round.  All scatters
index distinct replications (one event per row per step), so plain
fancy-indexed assignment is exact; no ``np.add.at`` is needed.

Bitwise contract: per replication the event order and every float
operation (``now + gap``, ``variate * scale``, accumulator adds) are
identical to the scalar kernel — vectorisation only batches *across*
replications, which never interact.  The engine cross-equality tests
hold this engine to bit-equality with the interpreted kernel.

Replications that need a buffer refill are flagged in ``paused`` and
dropped from the lockstep; the lane refills and re-enters, exactly as
for the scalar engines.
"""

from __future__ import annotations

import numpy as np

from repro.sim.arbiter import ARB_FIXED, ARB_ROUND_ROBIN
from repro.sim._mbkernel import SEQ_SENTINEL


def _grant(lane, rr, bb, tt):
    """Vectorised grant round: one call per (replication, bus) request.

    Mirrors the scalar ``_grant``: arbitrate on occupancy counts,
    timeout-drop stale heads (those rows loop), then start one
    transaction each with the pre-drawn service variate.  ``rr`` holds
    distinct replications, so every scatter hits unique elements.
    """
    if rr.size == 0:
        return
    cnt = lane.cnt
    head = lane.head
    cap = lane.cap
    slot_off = lane.slot_off
    senq = lane.senq
    sflow = lane.sflow
    sscale = lane.sscale
    ev_time = lane.ev_time
    ev_seq = lane.ev_seq
    next_id = lane.next_id
    rr_last = lane.rr_last
    busy = lane.busy
    granted = lane.granted
    svc = lane.svc
    svc_idx = lane.svc_idx
    flow_src = lane.flow_src
    timed_out = lane.timed_out
    lost = lane.lost
    wait_sum = lane.wait_sum
    wait_cnt = lane.wait_cnt
    S = lane.S
    kind = lane.arb_tag
    timeout = lane.timeout
    lo_all = lane.cl_off[:-1]
    width = lane.cl_width
    cols = lane._cols  # (1, Cmax) arange, preallocated

    while rr.size:
        lo = lo_all[bb]
        ncl = width[bb]
        if kind == ARB_ROUND_ROBIN:
            # Rotated occupancy scan starting after each cursor; wrap
            # duplicates beyond ncl can only repeat already-seen zeros.
            rot = (rr_last[rr, bb][:, None] + 1 + cols) % ncl[:, None]
            vals = cnt[rr[:, None], lo[:, None] + rot]
            nz = vals > 0
            none = ~nz.any(axis=1)
            i = rot[np.arange(rr.size), nz.argmax(axis=1)]
        else:
            idx = lo[:, None] + np.minimum(cols, (ncl - 1)[:, None])
            vals = np.where(cols < ncl[:, None], cnt[rr[:, None], idx], 0)
            if kind == ARB_FIXED:
                nz = vals > 0
                none = ~nz.any(axis=1)
                i = nz.argmax(axis=1)
            else:  # longest queue: first max, None when all empty
                i = vals.argmax(axis=1)
                none = vals[np.arange(rr.size), i] == 0
        keep = ~none
        if not keep.all():
            rr, bb, tt, lo, i = rr[keep], bb[keep], tt[keep], lo[keep], i[keep]
            if rr.size == 0:
                return
        if kind == ARB_ROUND_ROBIN:
            # Cursor moves at selection time, before any timeout drop —
            # the reference arbiter's exact behaviour.
            rr_last[rr, bb] = i
        g = lo + i
        h = head[rr, g]
        si = slot_off[g] + h
        enq = senq[rr, si]
        if timeout >= 0.0:
            stale = tt - enq > timeout
        else:
            stale = np.zeros(rr.size, dtype=bool)
        commit = ~stale
        if commit.any():
            rrc = rr[commit]
            bbc = bb[commit]
            ttc = tt[commit]
            sic = si[commit]
            wait_sum[rrc] += ttc - enq[commit]
            wait_cnt[rrc] += 1
            busy[rrc, bbc] = 1
            granted[rrc, bbc] = g[commit]
            sv = svc_idx[rrc, bbc]
            duration = svc[rrc, bbc, sv] * sscale[rrc, sic]
            svc_idx[rrc, bbc] = sv + 1
            ev_time[rrc, S + bbc] = ttc + duration
            ev_seq[rrc, S + bbc] = next_id[rrc]
            next_id[rrc] += 1
        if not stale.any():
            return
        # Timeout-drop the stale heads, then those rows arbitrate again
        # (the bus stays free at this instant, exactly like the scalar
        # retry loop; each iteration pops one packet, so it terminates).
        rrs = rr[stale]
        gs = g[stale]
        hs = h[stale]
        fs = sflow[rrs, si[stale]]
        nh = hs + 1
        head[rrs, gs] = np.where(nh == cap[gs], 0, nh)
        cnt[rrs, gs] -= 1
        srcs = flow_src[fs]
        timed_out[rrs, srcs] += 1
        lost[rrs, srcs] += 1
        rr, bb, tt = rrs, bb[stale], tt[stale]


def advance(lane, end_time):
    """One kernel invocation: lockstep-drain all replications.

    Returns the number of replications paused for a refill (their
    ``lane.paused`` flags are set); zero means every replication's
    calendar is drained past ``end_time``.
    """
    ev_time = lane.ev_time
    ev_seq = lane.ev_seq
    next_id = lane.next_id
    head = lane.head
    cnt = lane.cnt
    busy = lane.busy
    granted = lane.granted
    cap = lane.cap
    slot_off = lane.slot_off
    ring_bus = lane.ring_bus
    flow_src = lane.flow_src
    flow_last = lane.flow_last
    flow_ring = lane.flow_ring
    flow_scale = lane.flow_scale
    first_bus = lane.first_bus
    sflow = lane.sflow
    shop = lane.shop
    screa = lane.screa
    senq = lane.senq
    sscale = lane.sscale
    svc_idx = lane.svc_idx
    gaps = lane.gaps
    gap_idx = lane.gap_idx
    gap_len = lane.gap_len
    offered = lane.offered
    lost = lane.lost
    delivered = lane.delivered
    e2e_sum = lane.e2e_sum
    paused = lane.paused
    S = lane.S
    D = lane.svc_depth

    act = np.arange(lane.R)
    npaused = 0
    while act.size:
        # ---- select one (time, seq)-minimal event per live row ------
        evt = ev_time[act]
        t = evt.min(axis=1)
        live = t <= end_time
        if not live.all():
            act = act[live]
            if act.size == 0:
                break
            evt = evt[live]
            t = t[live]
        sel = np.where(
            evt == t[:, None], ev_seq[act], SEQ_SENTINEL
        ).argmin(axis=1)
        rows = act
        is_arr = sel < S
        drop = np.zeros(rows.size, dtype=bool)

        # ---- refill pre-checks (conservative, like the scalar kernel)
        ra = rows[is_arr]
        sa = sel[is_arr]
        ta = t[is_arr]
        if ra.size:
            pa = (gap_idx[ra, sa] >= gap_len[ra, sa]) | (
                svc_idx[ra, first_bus[sa]] >= D
            )
            if pa.any():
                paused[ra[pa]] = 1
                npaused += int(pa.sum())
                drop[np.flatnonzero(is_arr)[pa]] = True
                keep = ~pa
                ra, sa, ta = ra[keep], sa[keep], ta[keep]
        rc = rows[~is_arr]
        bc = sel[~is_arr] - S
        tc = t[~is_arr]
        if rc.size:
            gC = granted[rc, bc]
            hC = head[rc, gC]
            siC = slot_off[gC] + hC
            fC = sflow[rc, siC]
            hpC = shop[rc, siC]
            advm = hpC != flow_last[fC]
            nxt = np.where(advm, hpC + 1, hpC)  # clamped: pad-safe
            b2C = ring_bus[flow_ring[fC, nxt]]
            pc = (svc_idx[rc, bc] >= D) | (advm & (svc_idx[rc, b2C] >= D))
            if pc.any():
                paused[rc[pc]] = 1
                npaused += int(pc.sum())
                drop[np.flatnonzero(~is_arr)[pc]] = True
                keep = ~pc
                rc, bc, tc = rc[keep], bc[keep], tc[keep]
                gC, hC, siC = gC[keep], hC[keep], siC[keep]
                fC, hpC, advm = fC[keep], hpC[keep], advm[keep]
        if drop.any():
            act = rows[~drop]

        # ---- arrivals ----------------------------------------------
        if ra.size:
            srcA = flow_src[sa]
            offered[ra, srcA] += 1
            gA = flow_ring[sa, 0]
            capA = cap[gA]
            nA = cnt[ra, gA]
            fullA = nA == capA
            if fullA.any():
                lost[ra[fullA], srcA[fullA]] += 1
            accA = ~fullA
            if accA.any():
                raa = ra[accA]
                saa = sa[accA]
                taa = ta[accA]
                ga = gA[accA]
                na = nA[accA]
                ca = capA[accA]
                pos = head[raa, ga] + na
                pos = np.where(pos >= ca, pos - ca, pos)
                sia = slot_off[ga] + pos
                sflow[raa, sia] = saa
                shop[raa, sia] = 0
                screa[raa, sia] = taa
                senq[raa, sia] = taa
                sscale[raa, sia] = flow_scale[saa, 0]
                cnt[raa, ga] = na + 1
                ba = first_bus[saa]
                free = busy[raa, ba] == 0
                if free.any():
                    _grant(lane, raa[free], ba[free], taa[free])
            # Next arrival after any grant it caused (sequence parity).
            gi = gap_idx[ra, sa]
            ev_time[ra, sa] = ta + gaps[ra, sa, gi]
            ev_seq[ra, sa] = next_id[ra]
            next_id[ra] += 1
            gap_idx[ra, sa] = gi + 1

        # ---- completions -------------------------------------------
        if rc.size:
            createdC = screa[rc, siC]
            nh = hC + 1
            head[rc, gC] = np.where(nh == cap[gC], 0, nh)
            cnt[rc, gC] -= 1
            busy[rc, bc] = 0
            ev_time[rc, S + bc] = np.inf
            ev_seq[rc, S + bc] = SEQ_SENTINEL
            lastm = ~advm
            if lastm.any():
                rl = rc[lastm]
                delivered[rl, flow_src[fC[lastm]]] += 1
                e2e_sum[rl] += tc[lastm] - createdC[lastm]
            if advm.any():
                rm = rc[advm]
                fm = fC[advm]
                hm = hpC[advm] + 1
                tm = tc[advm]
                crm = createdC[advm]
                g2 = flow_ring[fm, hm]
                c2 = cap[g2]
                n2 = cnt[rm, g2]
                full2 = n2 == c2
                if full2.any():
                    lost[rm[full2], flow_src[fm[full2]]] += 1
                acc2 = ~full2
                if acc2.any():
                    rma = rm[acc2]
                    fma = fm[acc2]
                    hma = hm[acc2]
                    tma = tm[acc2]
                    g2a = g2[acc2]
                    n2a = n2[acc2]
                    c2a = c2[acc2]
                    pos2 = head[rma, g2a] + n2a
                    pos2 = np.where(pos2 >= c2a, pos2 - c2a, pos2)
                    si2 = slot_off[g2a] + pos2
                    sflow[rma, si2] = fma
                    shop[rma, si2] = hma
                    screa[rma, si2] = crm[acc2]
                    senq[rma, si2] = tma
                    sscale[rma, si2] = flow_scale[fma, hma]
                    cnt[rma, g2a] = n2a + 1
                    b2a = ring_bus[g2a]
                    free2 = busy[rma, b2a] == 0
                    if free2.any():
                        _grant(lane, rma[free2], b2a[free2], tma[free2])
            # Re-arbitrate the freed bus (it may have been re-taken by
            # a same-bus routed grant above — skip those rows).
            freeC = busy[rc, bc] == 0
            if freeC.any():
                _grant(lane, rc[freeC], bc[freeC], tc[freeC])
    return npaused
