"""Bus-cluster servers: arbitration, service, timeout dropping.

One :class:`ClusterBus` models the arbiter of one bus cluster (a set of
buses rigidly linked, sharing a single logical arbiter — exactly the unit
the split method produces).  The bus serves one packet at a time; service
duration is exponential with the *client's* rate (processors and bridges
may have different transaction lengths).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.arbiter import Arbiter
from repro.sim.buffer import FiniteBuffer
from repro.sim.engine import Simulator
from repro.sim.fastpath import ExponentialPool
from repro.sim.monitor import Monitor
from repro.sim.packet import Packet


class ClusterBus:
    """The shared server of one bus cluster.

    Parameters
    ----------
    name:
        Cluster label (for diagnostics).
    buffers:
        Client buffers in deterministic order (processors first, then
        bridge entries — the order fixes fixed-priority semantics).
    arbiter:
        Arbitration policy instance (not shared between clusters).
    simulator / monitor / rng:
        Shared infrastructure.
    on_serviced:
        Callback invoked with each packet whose transaction completed;
        the system routes it onward (next hop or delivery).
    timeout_threshold:
        If not None, a packet whose waiting time at grant instant exceeds
        the threshold is dropped (counted via
        :meth:`Monitor.record_timeout`) and the arbiter picks again —
        the paper's timeout-based policy.

    Service durations are drawn through a chunked
    :class:`~repro.sim.fastpath.ExponentialPool` whenever the arbiter
    never touches the generator (all deterministic arbiters), which
    consumes the bit stream identically to per-call draws; randomised
    arbiters share the generator, so they fall back to scalar draws to
    preserve the interleaving.
    """

    __slots__ = (
        "name",
        "buffers",
        "buffer_by_name",
        "arbiter",
        "simulator",
        "monitor",
        "rng",
        "on_serviced",
        "timeout_threshold",
        "busy",
        "_service_pool",
    )

    def __init__(
        self,
        name: str,
        buffers: List[FiniteBuffer],
        arbiter: Arbiter,
        simulator: Simulator,
        monitor: Monitor,
        rng: np.random.Generator,
        on_serviced: Callable[[Packet], None],
        timeout_threshold: Optional[float] = None,
    ) -> None:
        if not buffers:
            raise SimulationError(f"cluster {name!r} has no client buffers")
        if timeout_threshold is not None and timeout_threshold <= 0:
            raise SimulationError(
                f"timeout threshold must be > 0, got {timeout_threshold}"
            )
        self.name = name
        self.buffers = buffers
        self.buffer_by_name = {b.name: b for b in buffers}
        if len(self.buffer_by_name) != len(buffers):
            raise SimulationError(
                f"cluster {name!r} has duplicate buffer names"
            )
        self.arbiter = arbiter
        self.simulator = simulator
        self.monitor = monitor
        self.rng = rng
        self.on_serviced = on_serviced
        self.timeout_threshold = timeout_threshold
        self.busy = False
        self._service_pool = (
            None if arbiter.uses_rng else ExponentialPool(rng)
        )

    # ------------------------------------------------------------------

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to its hop buffer; kick the server if idle.

        Returns False (after recording the loss) when the buffer is full.
        """
        buffer = self.buffer_by_name.get(packet.current_hop.client)
        if buffer is None:
            raise SimulationError(
                f"cluster {self.name!r} has no buffer "
                f"{packet.current_hop.client!r}"
            )
        accepted = buffer.offer(packet, self.simulator.now)
        if not accepted:
            self.monitor.record_loss(packet)
            return False
        if not self.busy:
            self._grant_next()
        return True

    # ------------------------------------------------------------------

    def _grant_next(self) -> None:
        """Arbitrate and start the next transaction, if any work exists.

        The granted packet *stays in its buffer* (occupying its slot)
        until the transaction completes — the same convention as the
        CTMDP occupancy model, where a request holds buffer space while
        the bus transfers it.
        """
        if self.busy:
            return
        while True:
            index = self.arbiter.grant(self.buffers, self.simulator.now, self.rng)
            if index is None:
                return
            buffer = self.buffers[index]
            packet = buffer.peek()
            if (
                self.timeout_threshold is not None
                and self.simulator.now - packet.enqueued_at
                > self.timeout_threshold
            ):
                buffer.pop(self.simulator.now)
                self.monitor.record_timeout(packet)
                continue  # pick another request; bus stays free this instant
            self.monitor.record_service_start(packet, self.simulator.now)
            self.busy = True
            scale = 1.0 / packet.current_hop.service_rate
            if self._service_pool is not None:
                duration = self._service_pool.next() * scale
            else:
                duration = self.rng.exponential(scale)
            self.simulator.schedule(duration, self._complete, buffer, packet)
            return

    def _complete(self, buffer: FiniteBuffer, packet: Packet) -> None:
        """A transaction finished: release the slot, route, re-arbitrate."""
        head = buffer.pop(self.simulator.now)
        if head is not packet:  # pragma: no cover - defensive
            raise SimulationError(
                f"buffer {buffer.name!r} head changed during service"
            )
        self.busy = False
        self.on_serviced(packet)
        self._grant_next()


class ClusterState:
    """Array extraction of one :class:`ClusterBus` for the batched lane.

    Bundles, in arbiter order, the cluster's ring ids (indices into the
    lane's global :class:`~repro.sim.buffer.PacketRing` registry), the
    mutable occupancy-count list the vectorised grant loop reads, and
    the client names — plus the *shared* arbiter/rng/service-pool
    objects of the source bus.  Sharing (not copying) those objects is
    deliberate: their internal state (a round-robin arbiter's cursor,
    the pool's chunk position) carries over exactly, which is what the
    bitwise determinism contract of :mod:`repro.sim.batched` requires.
    """

    __slots__ = (
        "name",
        "ring_ids",
        "counts",
        "names",
        "arbiter",
        "rng",
        "pool",
        "timeout_threshold",
    )

    def __init__(self, bus: ClusterBus, ring_ids: List[int]) -> None:
        if len(ring_ids) != len(bus.buffers):
            raise SimulationError(
                f"cluster {bus.name!r}: {len(ring_ids)} ring ids for "
                f"{len(bus.buffers)} buffers"
            )
        self.name = bus.name
        self.ring_ids = list(ring_ids)
        self.counts = [0] * len(bus.buffers)
        self.names = [b.name for b in bus.buffers]
        self.arbiter = bus.arbiter
        self.rng = bus.rng
        self.pool = bus._service_pool
        self.timeout_threshold = bus.timeout_threshold
