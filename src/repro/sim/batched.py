"""Array-native batched simulation lane.

:class:`BatchedSystem` executes the *exact* stochastic system of
:class:`~repro.sim.system.CommunicationSystem` — same wiring, same seed
substreams, same event ordering, same statistics — but replaces the
per-event callback machinery with flat array state driven off a
:class:`~repro.sim.engine.BatchedSimulator`:

* arrivals are pre-drawn per source into gap arrays (chunked exactly
  like :class:`~repro.sim.processor.FlowSource` so traffic descriptors
  see the identical call sequence) and consumed by index;
* queued packets live in :class:`~repro.sim.buffer.PacketRing` slot
  arrays instead of :class:`~repro.sim.packet.Packet` objects;
* arbitration runs on per-cluster occupancy-count lists — the built-in
  deterministic policies are inlined in the drain loop, with
  :meth:`~repro.sim.arbiter.Arbiter.grant_counts` as the reference the
  inlined copies are held against (and the fallback for custom or
  randomised arbiters);
* deterministic-arbiter service variates are pre-taken in blocks via
  :meth:`~repro.sim.fastpath.ExponentialPool.take` and indexed from a
  flat array;
* loss/delivery counters are per-processor integer arrays, folded back
  into the shared :class:`~repro.sim.monitor.Monitor` after each
  :meth:`run_until` window.

The drain loop is the inlined form of repeated
:meth:`BatchedSimulator.pop_batch` calls: events pop in ``(time,
sequence)`` order, which dispatches a same-timestamp group in exactly
the grouped order ``pop_batch`` would hand back.

Determinism contract
--------------------
For a fixed seed the lane reproduces the heap engine *bitwise*: every
random draw happens through the same generator objects in the same
order, and events execute in the same ``(time, sequence)`` order —
sequence numbers are assigned at the same logical scheduling points the
heap engine assigns its event ids, so even exact-timestamp ties (e.g.
simultaneous trace replays) resolve identically.  This holds for the
deterministic arbiters (fixed priority, round robin, longest queue),
whose event order is total, and extends to ``weighted_random`` because
:meth:`~repro.sim.arbiter.WeightedRandomArbiter.grant_counts` performs
the identical generator calls; the *guaranteed* contract for randomised
arbiters is nevertheless only statistical equivalence (batch-means CI),
which is what the equivalence suite asserts for them.

All buffers — partially consumed gap arrays, service-variate blocks,
ring contents — persist across :meth:`run_until` calls, so a
warmup/measurement window split consumes the bit stream exactly like
one uninterrupted run (no pool is ever discarded mid-chunk).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.arbiter import (
    ARB_FIXED,
    ARB_GENERIC,
    ARB_LONGEST,
    ARB_ROUND_ROBIN,
    kernel_tag,
)
from repro.sim.buffer import PacketRing
from repro.sim.bus import ClusterState
from repro.sim.engine import BatchedSimulator
from repro.sim.system import CommunicationSystem

#: Service variates pre-taken per block on deterministic-arbiter buses.
#: Any value is stream-identical (the pool refills in its own chunks);
#: 512 matches the pool chunk so one take maps to one refill.
SERVICE_BLOCK = 512

# Inline-dispatch tags for the built-in deterministic arbiters; anything
# else goes through the generic grant_counts call.  Shared with the
# mega-batch kernel so both lanes agree on the encoding.
_FIXED, _ROUND_ROBIN, _LONGEST, _GENERIC = (
    ARB_FIXED,
    ARB_ROUND_ROBIN,
    ARB_LONGEST,
    ARB_GENERIC,
)


class BatchedSystem:
    """Run a wired :class:`CommunicationSystem` on the array lane.

    Parameters
    ----------
    system:
        A freshly built communication system.  Its buses, arbiters,
        RNG substreams and service pools are *adopted* (shared, not
        copied); the object-engine components are used for construction
        and final statistics only — no event must have run on
        ``system.simulator``.
    """

    def __init__(self, system: CommunicationSystem) -> None:
        if system.simulator.now != 0.0 or system.simulator.pending_events:
            raise SimulationError(
                "BatchedSystem must adopt an unstarted CommunicationSystem"
            )
        self.system = system
        self.sim = BatchedSimulator()
        self._started = False

        # -- global ring registry, cluster by cluster in arbiter order --
        self.rings: List[PacketRing] = []
        self.clusters: List[ClusterState] = []
        self._ring_cluster: List[int] = []  # ring id -> cluster index
        self._ring_pos: List[int] = []      # ring id -> index in cluster
        ring_id: Dict[str, int] = {}
        for b, bus in enumerate(system.buses):
            ids = []
            for pos, buf in enumerate(bus.buffers):
                gid = len(self.rings)
                self.rings.append(PacketRing(buf.name, buf.capacity))
                ring_id[buf.name] = gid
                self._ring_cluster.append(b)
                self._ring_pos.append(pos)
                ids.append(gid)
            self.clusters.append(ClusterState(bus, ids))

        # Every cluster shares one timeout threshold (system-level knob).
        self.timeout_threshold = (
            system.buses[0].timeout_threshold if system.buses else None
        )

        # -- flat ring state the hot loop binds to locals --
        self._ring_flow = [r.flow for r in self.rings]
        self._ring_hop = [r.hop for r in self.rings]
        self._ring_created = [r.created for r in self.rings]
        self._ring_enqueued = [r.enqueued for r in self.rings]
        self._ring_scale = [r.scale for r in self.rings]
        self._cap = [r.capacity for r in self.rings]
        self._head = [0] * len(self.rings)
        self._count = [0] * len(self.rings)

        # -- flat cluster state --
        self._cl_counts = [cs.counts for cs in self.clusters]
        self._cl_rings = [cs.ring_ids for cs in self.clusters]
        self._cl_names = [cs.names for cs in self.clusters]
        self._arbiters = [cs.arbiter for cs in self.clusters]
        self._arb_kind = [kernel_tag(cs.arbiter) for cs in self.clusters]
        self._cl_rng = [cs.rng for cs in self.clusters]
        self._cl_pool = [cs.pool for cs in self.clusters]
        self._busy = [False] * len(self.clusters)
        self._granted = [-1] * len(self.clusters)
        # Pre-taken service variates (deterministic arbiters only);
        # [] forces a take() on first grant.
        self._svc_buf: List[Optional[List[float]]] = [
            [] if cs.pool is not None else None for cs in self.clusters
        ]
        self._svc_idx = [0] * len(self.clusters)

        # -- flows (one source per flow, in system.sources order) --
        proc_names = sorted(system.topology.processors)
        self._proc_names = proc_names
        proc_index = {name: i for i, name in enumerate(proc_names)}
        self._flow_bufs: List[List[int]] = []
        self._flow_scale: List[List[float]] = []
        self._flow_last: List[int] = []
        self._flow_src: List[int] = []
        self._traffic = []
        self._src_rng = []
        self._src_batch: List[int] = []
        for source in system.sources:
            self._flow_bufs.append(
                [ring_id[hop.client] for hop in source.hops]
            )
            self._flow_scale.append(
                [1.0 / hop.service_rate for hop in source.hops]
            )
            self._flow_last.append(len(source.hops) - 1)
            self._flow_src.append(proc_index[source.flow.source])
            self._traffic.append(source.flow.traffic)
            self._src_rng.append(source.rng)
            self._src_batch.append(source.batch)
        self._flow_first = [bufs[0] for bufs in self._flow_bufs]
        self._flow_scale0 = [scales[0] for scales in self._flow_scale]
        self._gap_buf: List[List[float]] = [[] for _ in system.sources]
        self._gap_idx = [0] * len(system.sources)

        # -- counters (folded into the Monitor by _sync_monitor) --
        n = len(proc_names)
        self._offered = [0] * n
        self._lost = [0] * n
        self._timed_out = [0] * n
        self._delivered = [0] * n
        self._wait_sum = 0.0
        self._wait_cnt = 0
        self._e2e_sum = 0.0

    # ------------------------------------------------------------------

    @property
    def monitor(self):
        """The adopted system's monitor (synced after every window)."""
        return self.system.monitor

    def start(self) -> None:
        """Draw each source's first gap chunk and schedule first arrivals.

        Mirrors ``for source in system.sources: source.start()`` on the
        heap engine: chunks are drawn in source order with the sources'
        own generators, and the first arrivals receive sequence numbers
        ``0..S-1`` exactly like the heap engine's event ids.
        """
        if self._started:
            raise SimulationError("BatchedSystem already started")
        self._started = True
        push = self.sim.push
        for s, traffic in enumerate(self._traffic):
            gaps = traffic.sample_interarrivals(
                self._src_rng[s], self._src_batch[s]
            ).tolist()
            self._gap_buf[s] = gaps
            self._gap_idx[s] = 1
            push(0.0 + gaps[0], s)

    # ------------------------------------------------------------------

    def run_until(self, end_time: float) -> None:
        """Execute events through ``end_time`` and sync the monitor.

        Same boundary semantics as :meth:`Simulator.run_until`: events
        scheduled exactly at ``end_time`` execute, and the clock
        finishes at ``end_time``.  State (rings, gap buffers, service
        blocks) persists across calls, so consecutive windows are
        equivalent to one long run.
        """
        if not self._started:
            raise SimulationError("call start() before run_until()")
        sim = self.sim
        if end_time < sim.now:
            raise SimulationError(
                f"end time {end_time} is before now {sim.now}"
            )
        # ---- bind hot state to locals ------------------------------
        queue = sim._queue
        next_id = sim._next_id
        num_sources = len(self._traffic)
        ring_flow = self._ring_flow
        ring_hop = self._ring_hop
        ring_created = self._ring_created
        ring_enqueued = self._ring_enqueued
        ring_scale = self._ring_scale
        cap = self._cap
        head = self._head
        count = self._count
        ring_cluster = self._ring_cluster
        ring_pos = self._ring_pos
        cl_counts = self._cl_counts
        cl_rings = self._cl_rings
        cl_names = self._cl_names
        arbiters = self._arbiters
        arb_kind = self._arb_kind
        cl_rng = self._cl_rng
        cl_pool = self._cl_pool
        busy = self._busy
        granted = self._granted
        svc_buf = self._svc_buf
        svc_idx = self._svc_idx
        timeout = self.timeout_threshold
        flow_bufs = self._flow_bufs
        flow_scale = self._flow_scale
        flow_first = self._flow_first
        flow_scale0 = self._flow_scale0
        flow_last = self._flow_last
        flow_src = self._flow_src
        traffic = self._traffic
        src_rng = self._src_rng
        src_batch = self._src_batch
        gap_buf = self._gap_buf
        gap_idx = self._gap_idx
        offered = self._offered
        lost = self._lost
        timed_out = self._timed_out
        delivered = self._delivered
        wait_sum = self._wait_sum
        wait_cnt = self._wait_cnt
        e2e_sum = self._e2e_sum

        def grant(b: int, now: float) -> None:
            # ClusterBus._grant_next over arrays: arbitrate on the
            # occupancy counts, timeout-drop stale heads, then start one
            # transaction with a pre-taken (or, under randomised
            # arbitration, freshly drawn) service variate.  The three
            # built-in deterministic policies are inlined copies of
            # their grant_counts methods (cross-checked by the
            # equivalence tests); _GENERIC dispatches the real method.
            nonlocal wait_sum, wait_cnt, next_id
            if busy[b]:
                return
            kind = arb_kind[b]
            cnts = cl_counts[b]
            ids = cl_rings[b]
            while True:
                if kind == _LONGEST:
                    i = None
                    best = 0
                    for j, c in enumerate(cnts):
                        if c > best:
                            i = j
                            best = c
                elif kind == _FIXED:
                    i = None
                    for j, c in enumerate(cnts):
                        if c:
                            i = j
                            break
                elif kind == _ROUND_ROBIN:
                    arb = arbiters[b]
                    n = len(cnts)
                    j = arb._last
                    i = None
                    for _off in range(n):
                        j += 1
                        if j >= n:
                            j -= n
                        if cnts[j]:
                            arb._last = i = j
                            break
                else:
                    i = arbiters[b].grant_counts(
                        cnts, cl_names[b], now, cl_rng[b]
                    )
                if i is None:
                    return
                g = ids[i]
                h = head[g]
                enq = ring_enqueued[g][h]
                if timeout is not None and now - enq > timeout:
                    f = ring_flow[g][h]
                    nh = h + 1
                    head[g] = 0 if nh == cap[g] else nh
                    count[g] -= 1
                    cnts[i] -= 1
                    src = flow_src[f]
                    timed_out[src] += 1
                    lost[src] += 1
                    continue  # pick another; the bus stays free now
                wait_sum += now - enq
                wait_cnt += 1
                busy[b] = True
                granted[b] = g
                scale = ring_scale[g][h]
                block = svc_buf[b]
                if block is not None:
                    si = svc_idx[b]
                    if si >= len(block):
                        block = cl_pool[b].take(SERVICE_BLOCK).tolist()
                        svc_buf[b] = block
                        si = 0
                    svc_idx[b] = si + 1
                    duration = block[si] * scale
                else:
                    duration = cl_rng[b].exponential(scale)
                heappush(queue, (now + duration, next_id, num_sources + b))
                next_id += 1
                return

        # ---- drain loop --------------------------------------------
        # Inlined BatchedSimulator.pop_batch: events pop in (time,
        # sequence) order, so a same-timestamp batch dispatches in
        # exactly the grouped order pop_batch would return.
        while queue and queue[0][0] <= end_time:
            now, _seq, code = heappop(queue)
            if code < num_sources:
                # -- arrival of source `code` ------------------------
                s = code
                src = flow_src[s]
                offered[src] += 1
                g = flow_first[s]
                n = count[g]
                if n == cap[g]:
                    lost[src] += 1
                else:
                    pos = head[g] + n
                    c = cap[g]
                    if pos >= c:
                        pos -= c
                    ring_flow[g][pos] = s
                    ring_hop[g][pos] = 0
                    ring_created[g][pos] = now
                    ring_enqueued[g][pos] = now
                    ring_scale[g][pos] = flow_scale0[s]
                    count[g] = n + 1
                    b = ring_cluster[g]
                    cl_counts[b][ring_pos[g]] += 1
                    if not busy[b]:
                        grant(b, now)
                # Schedule the next arrival (the heap engine assigns
                # the next-arrival id after any grant it caused).
                gi = gap_idx[s]
                gaps = gap_buf[s]
                if gi >= len(gaps):
                    gaps = traffic[s].sample_interarrivals(
                        src_rng[s], src_batch[s]
                    ).tolist()
                    gap_buf[s] = gaps
                    gi = 0
                gap_idx[s] = gi + 1
                heappush(queue, (now + gaps[gi], next_id, s))
                next_id += 1
            else:
                # -- completion on bus `code - num_sources` ----------
                b = code - num_sources
                g = granted[b]
                h = head[g]
                f = ring_flow[g][h]
                hp = ring_hop[g][h]
                created = ring_created[g][h]
                nh = h + 1
                head[g] = 0 if nh == cap[g] else nh
                count[g] -= 1
                cl_counts[b][ring_pos[g]] -= 1
                busy[b] = False
                if hp == flow_last[f]:
                    delivered[flow_src[f]] += 1
                    e2e_sum += now - created
                else:
                    hp += 1
                    g2 = flow_bufs[f][hp]
                    n2 = count[g2]
                    if n2 == cap[g2]:
                        lost[flow_src[f]] += 1
                    else:
                        pos = head[g2] + n2
                        c2 = cap[g2]
                        if pos >= c2:
                            pos -= c2
                        ring_flow[g2][pos] = f
                        ring_hop[g2][pos] = hp
                        ring_created[g2][pos] = created
                        ring_enqueued[g2][pos] = now
                        ring_scale[g2][pos] = flow_scale[f][hp]
                        count[g2] = n2 + 1
                        b2 = ring_cluster[g2]
                        cl_counts[b2][ring_pos[g2]] += 1
                        if not busy[b2]:
                            grant(b2, now)
                grant(b, now)

        # ---- write back clock, ids, accumulators ------------------
        sim._next_id = next_id
        sim.advance_to(end_time)
        self._wait_sum = wait_sum
        self._wait_cnt = wait_cnt
        self._e2e_sum = e2e_sum
        for g, ring in enumerate(self.rings):
            ring.head = head[g]
            ring.count = count[g]
        self._sync_monitor()

    # ------------------------------------------------------------------

    def _sync_monitor(self) -> None:
        """Fold the array counters into the shared :class:`Monitor`.

        Only non-zero counts are written, mirroring the defaultdict
        behaviour of the heap lane's monitor (absent keys stay absent).
        """
        monitor = self.system.monitor
        names = self._proc_names
        for values, target in (
            (self._offered, monitor.offered),
            (self._lost, monitor.lost),
            (self._timed_out, monitor.timed_out),
            (self._delivered, monitor.delivered),
        ):
            for i, v in enumerate(values):
                if v:
                    target[names[i]] = v
        monitor.waiting_time_sum = self._wait_sum
        monitor.waiting_time_count = self._wait_cnt
        monitor.end_to_end_sum = self._e2e_sum
