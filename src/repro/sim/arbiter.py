"""Bus arbitration policies.

The arbiter decides, whenever the bus frees up, which non-empty client
buffer is granted next.  The CTMDP solution influences the simulator
mainly through *buffer sizes*, but the LP's bus-time shares can also be
fed back as :class:`WeightedRandomArbiter` weights — the stochastic
arbitration the paper derives from state-action probabilities.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import PolicyError
from repro.sim.buffer import FiniteBuffer


class Arbiter(abc.ABC):
    """Interface: pick the next buffer to serve among non-empty ones.

    Every policy exposes two equivalent surfaces:

    * :meth:`grant` — the heap engine's view: a sequence of
      :class:`FiniteBuffer` objects whose occupancies are inspected.
    * :meth:`grant_counts` — the batched lane's view: a plain sequence
      of occupancy counts (plus the client names, for weight lookups).

    Both must pick the same index for the same occupancy pattern and —
    for randomised policies — consume the shared generator through the
    **same sequence of calls**, so a fixed-seed run is bitwise identical
    whichever surface drives it (asserted by the equivalence tests).
    """

    #: Whether :meth:`grant` ever consumes the shared generator.  The
    #: bus only batches its service-duration draws (a pure speedup that
    #: keeps fixed-seed runs bitwise identical) when this is False;
    #: randomised arbiters must leave it True so the interleaving of
    #: their draws with service draws is preserved.
    uses_rng: bool = True

    @abc.abstractmethod
    def grant(
        self,
        buffers: Sequence[FiniteBuffer],
        now: float,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Index into ``buffers`` of the granted client, or None if all empty."""

    @abc.abstractmethod
    def grant_counts(
        self,
        counts: Sequence[int],
        names: Sequence[str],
        now: float,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """:meth:`grant` over an occupancy-count array.

        ``counts[i]`` is the queue length of client ``names[i]`` (same
        order the buffer list would have).  Returns the granted index or
        None when every count is zero.
        """


class FixedPriorityArbiter(Arbiter):
    """Always grant the lowest-indexed non-empty buffer.

    Client order is the deterministic order the system builder uses, so
    priorities are reproducible.
    """

    uses_rng = False

    def grant(self, buffers, now, rng):
        for i, buf in enumerate(buffers):
            if not buf.is_empty:
                return i
        return None

    def grant_counts(self, counts, names, now, rng):
        for i, c in enumerate(counts):
            if c:
                return i
        return None


class RoundRobinArbiter(Arbiter):
    """Cycle through clients starting after the last grant."""

    uses_rng = False

    def __init__(self) -> None:
        self._last = -1

    def grant(self, buffers, now, rng):
        n = len(buffers)
        for offset in range(1, n + 1):
            i = (self._last + offset) % n
            if not buffers[i].is_empty:
                self._last = i
                return i
        return None

    def grant_counts(self, counts, names, now, rng):
        n = len(counts)
        last = self._last
        for offset in range(1, n + 1):
            i = (last + offset) % n
            if counts[i]:
                self._last = i
                return i
        return None


class LongestQueueArbiter(Arbiter):
    """Grant the fullest buffer (ties to the lowest index)."""

    uses_rng = False

    def grant(self, buffers, now, rng):
        best = None
        best_len = 0
        for i, buf in enumerate(buffers):
            if buf.occupancy > best_len:
                best = i
                best_len = buf.occupancy
        return best

    def grant_counts(self, counts, names, now, rng):
        best = None
        best_len = 0
        for i, c in enumerate(counts):
            if c > best_len:
                best = i
                best_len = c
        return best


class WeightedRandomArbiter(Arbiter):
    """Grant a random non-empty buffer with fixed client weights.

    Weights are keyed by client (buffer) name; missing names default to
    weight one.  This realises a stationary randomised arbitration policy
    such as the bus-time shares extracted from the CTMDP solution.
    """

    def __init__(self, weights: Dict[str, float]) -> None:
        for name, w in weights.items():
            if w < 0:
                raise PolicyError(
                    f"arbiter weight for {name!r} must be >= 0, got {w}"
                )
        self.weights = dict(weights)

    def grant(self, buffers, now, rng):
        candidates = [i for i, b in enumerate(buffers) if not b.is_empty]
        if not candidates:
            return None
        w = np.array(
            [self.weights.get(buffers[i].name, 1.0) for i in candidates]
        )
        total = w.sum()
        if total <= 0:
            # All-zero weights among candidates: fall back to uniform.
            return candidates[int(rng.integers(len(candidates)))]
        return candidates[int(rng.choice(len(candidates), p=w / total))]

    def grant_counts(self, counts, names, now, rng):
        # Performs the exact generator calls of grant() on the same
        # candidate set, so the two surfaces consume the shared bit
        # stream identically (the batched lane's determinism contract).
        candidates = [i for i, c in enumerate(counts) if c]
        if not candidates:
            return None
        w = np.array([self.weights.get(names[i], 1.0) for i in candidates])
        total = w.sum()
        if total <= 0:
            return candidates[int(rng.integers(len(candidates)))]
        return candidates[int(rng.choice(len(candidates), p=w / total))]


_ARBITERS = {
    "fixed_priority": FixedPriorityArbiter,
    "round_robin": RoundRobinArbiter,
    "longest_queue": LongestQueueArbiter,
}

#: Inline-dispatch tags for the array lanes (batched and megabatch).
#: The three built-in deterministic policies have branch-free inlined
#: copies in the kernels; everything else — randomised or user-defined —
#: is ``ARB_GENERIC`` and goes through :meth:`Arbiter.grant_counts`.
ARB_FIXED, ARB_ROUND_ROBIN, ARB_LONGEST, ARB_GENERIC = 0, 1, 2, 3

#: Arbiter kinds the mega-batch kernel can run natively (deterministic,
#: no generator access, total event order — the bitwise contract).
KERNEL_ARBITERS = ("fixed_priority", "round_robin", "longest_queue")


def kernel_tag(arbiter: Arbiter) -> int:
    """The inline-dispatch tag of one arbiter *instance*.

    Exact-type matching on purpose: a subclass may override behaviour,
    so it must take the generic (method-dispatch) path even though it
    would pass an ``isinstance`` check.
    """
    if type(arbiter) is FixedPriorityArbiter:
        return ARB_FIXED
    if type(arbiter) is RoundRobinArbiter:
        return ARB_ROUND_ROBIN
    if type(arbiter) is LongestQueueArbiter:
        return ARB_LONGEST
    return ARB_GENERIC


def make_arbiter(kind: str = "longest_queue", **kwargs) -> Arbiter:
    """Factory from a string name (used by runner/experiment configs).

    ``kind='weighted_random'`` additionally accepts ``weights=...``.
    """
    if kind == "weighted_random":
        return WeightedRandomArbiter(kwargs.get("weights", {}))
    try:
        cls = _ARBITERS[kind]
    except KeyError:
        raise PolicyError(
            f"unknown arbiter {kind!r}; choose from "
            f"{sorted(_ARBITERS) + ['weighted_random']}"
        ) from None
    return cls()
