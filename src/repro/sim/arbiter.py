"""Bus arbitration policies.

The arbiter decides, whenever the bus frees up, which non-empty client
buffer is granted next.  The CTMDP solution influences the simulator
mainly through *buffer sizes*, but the LP's bus-time shares can also be
fed back as :class:`WeightedRandomArbiter` weights — the stochastic
arbitration the paper derives from state-action probabilities.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import PolicyError
from repro.sim.buffer import FiniteBuffer


class Arbiter(abc.ABC):
    """Interface: pick the next buffer to serve among non-empty ones."""

    #: Whether :meth:`grant` ever consumes the shared generator.  The
    #: bus only batches its service-duration draws (a pure speedup that
    #: keeps fixed-seed runs bitwise identical) when this is False;
    #: randomised arbiters must leave it True so the interleaving of
    #: their draws with service draws is preserved.
    uses_rng: bool = True

    @abc.abstractmethod
    def grant(
        self,
        buffers: Sequence[FiniteBuffer],
        now: float,
        rng: np.random.Generator,
    ) -> Optional[int]:
        """Index into ``buffers`` of the granted client, or None if all empty."""


class FixedPriorityArbiter(Arbiter):
    """Always grant the lowest-indexed non-empty buffer.

    Client order is the deterministic order the system builder uses, so
    priorities are reproducible.
    """

    uses_rng = False

    def grant(self, buffers, now, rng):
        for i, buf in enumerate(buffers):
            if not buf.is_empty:
                return i
        return None


class RoundRobinArbiter(Arbiter):
    """Cycle through clients starting after the last grant."""

    uses_rng = False

    def __init__(self) -> None:
        self._last = -1

    def grant(self, buffers, now, rng):
        n = len(buffers)
        for offset in range(1, n + 1):
            i = (self._last + offset) % n
            if not buffers[i].is_empty:
                self._last = i
                return i
        return None


class LongestQueueArbiter(Arbiter):
    """Grant the fullest buffer (ties to the lowest index)."""

    uses_rng = False

    def grant(self, buffers, now, rng):
        best = None
        best_len = 0
        for i, buf in enumerate(buffers):
            if buf.occupancy > best_len:
                best = i
                best_len = buf.occupancy
        return best


class WeightedRandomArbiter(Arbiter):
    """Grant a random non-empty buffer with fixed client weights.

    Weights are keyed by client (buffer) name; missing names default to
    weight one.  This realises a stationary randomised arbitration policy
    such as the bus-time shares extracted from the CTMDP solution.
    """

    def __init__(self, weights: Dict[str, float]) -> None:
        for name, w in weights.items():
            if w < 0:
                raise PolicyError(
                    f"arbiter weight for {name!r} must be >= 0, got {w}"
                )
        self.weights = dict(weights)

    def grant(self, buffers, now, rng):
        candidates = [i for i, b in enumerate(buffers) if not b.is_empty]
        if not candidates:
            return None
        w = np.array(
            [self.weights.get(buffers[i].name, 1.0) for i in candidates]
        )
        total = w.sum()
        if total <= 0:
            # All-zero weights among candidates: fall back to uniform.
            return candidates[int(rng.integers(len(candidates)))]
        return candidates[int(rng.choice(len(candidates), p=w / total))]


_ARBITERS = {
    "fixed_priority": FixedPriorityArbiter,
    "round_robin": RoundRobinArbiter,
    "longest_queue": LongestQueueArbiter,
}


def make_arbiter(kind: str = "longest_queue", **kwargs) -> Arbiter:
    """Factory from a string name (used by runner/experiment configs).

    ``kind='weighted_random'`` additionally accepts ``weights=...``.
    """
    if kind == "weighted_random":
        return WeightedRandomArbiter(kwargs.get("weights", {}))
    try:
        cls = _ARBITERS[kind]
    except KeyError:
        raise PolicyError(
            f"unknown arbiter {kind!r}; choose from "
            f"{sorted(_ARBITERS) + ['weighted_random']}"
        ) from None
    return cls()
