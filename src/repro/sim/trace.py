"""Event tracing for simulator debugging and validation.

A :class:`TraceRecorder` hooks the monitor's recording points and keeps
a bounded, structured log of packet-level events — the tool you reach
for when a loss count looks wrong.  Disabled by default everywhere; the
validation harness (:mod:`repro.analysis.validation`) and a few tests
use it.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.errors import SimulationError
from repro.sim.monitor import Monitor
from repro.sim.packet import Packet


@dataclass(frozen=True)
class TraceEvent:
    """One recorded packet event."""

    time: float
    kind: str  # offered | loss | timeout | service | delivery
    packet_id: int
    flow: str
    source: str
    hop_client: str


class TraceRecorder(Monitor):
    """A Monitor that additionally keeps a bounded event log.

    Drop-in replacement for :class:`~repro.sim.monitor.Monitor`; pass it
    to :class:`~repro.sim.system.CommunicationSystem` by assigning to
    ``system.monitor`` before running (the components hold a reference
    to the same object).
    """

    def __init__(self, max_events: int = 100_000) -> None:
        super().__init__()
        if max_events < 1:
            raise SimulationError("max_events must be >= 1")
        self.max_events = max_events
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        self._clock = 0.0

    def set_clock(self, now: float) -> None:
        """Update the recorder's notion of time (offered events carry it)."""
        self._clock = now

    def _log(self, kind: str, packet: Packet, time: Optional[float] = None) -> None:
        self.events.append(
            TraceEvent(
                time=self._clock if time is None else time,
                kind=kind,
                packet_id=packet.packet_id,
                flow=packet.flow,
                source=packet.source,
                hop_client=packet.current_hop.client,
            )
        )

    # -- Monitor overrides ------------------------------------------------

    def record_offered(self, packet: Packet) -> None:
        super().record_offered(packet)
        self._log("offered", packet, time=packet.created_at)

    def record_loss(self, packet: Packet) -> None:
        super().record_loss(packet)
        self._log("loss", packet)

    def record_timeout(self, packet: Packet) -> None:
        super().record_timeout(packet)
        self._log("timeout", packet)

    def record_service_start(self, packet: Packet, now: float) -> None:
        super().record_service_start(packet, now)
        self._log("service", packet, time=now)

    def record_delivery(self, packet: Packet, now: float) -> None:
        super().record_delivery(packet, now)
        self._log("delivery", packet, time=now)

    # -- queries -----------------------------------------------------------

    def events_of_kind(self, kind: str) -> List[TraceEvent]:
        """All recorded events of one kind, oldest first."""
        return [e for e in self.events if e.kind == kind]

    def loss_sites(self) -> Dict[str, int]:
        """Loss counts by the buffer at which the drop happened."""
        return dict(
            Counter(e.hop_client for e in self.events if e.kind in (
                "loss", "timeout"
            ))
        )

    def packet_history(self, packet_id: int) -> List[TraceEvent]:
        """Every recorded event of one packet, in order."""
        return [e for e in self.events if e.packet_id == packet_id]
