"""Bridge-entry buffer naming and hop construction.

A bridge between two buses owns one *entry buffer per direction*: a
packet crossing from cluster A into cluster B waits in the buffer
``"<bridge>@<entry_bus>"`` where ``entry_bus`` is the bridge endpoint
inside cluster B.  The same canonical names are used by the sizing
pipeline (:mod:`repro.core.splitting`), so a
:class:`~repro.core.sizing.BufferAllocation` maps directly onto simulator
buffers.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.arch.topology import Bridge, Route, Topology
from repro.errors import TopologyError
from repro.sim.packet import Hop


def client_name_for_bridge(bridge_name: str, entry_bus: str) -> str:
    """Canonical name of a bridge's entry buffer on one side."""
    return f"{bridge_name}@{entry_bus}"


def bridge_entry_bus(bridge: Bridge, entry_cluster: frozenset) -> str:
    """The bridge endpoint bus that lies inside ``entry_cluster``."""
    if bridge.bus_a in entry_cluster:
        return bridge.bus_a
    if bridge.bus_b in entry_cluster:
        return bridge.bus_b
    raise TopologyError(
        f"bridge {bridge.name!r} has no endpoint in cluster "
        f"{sorted(entry_cluster)}"
    )


def build_hops(
    topology: Topology,
    flow_name: str,
    cluster_index: dict,
) -> Tuple[Hop, ...]:
    """The hop list a packet of ``flow_name`` traverses.

    First hop: the source processor's own buffer on its cluster.  Each
    bridge crossing appends a hop through the bridge's entry buffer on
    the *entered* cluster.
    """
    flow = topology.flows[flow_name]
    route: Route = topology.route(flow_name)
    source = topology.processors[flow.source]
    hops: List[Hop] = [
        Hop(
            cluster_index[route.clusters[0]],
            source.name,
            source.service_rate,
        )
    ]
    for bridge_name, entered in zip(route.bridges, route.clusters[1:]):
        bridge = topology.bridges[bridge_name]
        entry_bus = bridge_entry_bus(bridge, entered)
        hops.append(
            Hop(
                cluster_index[entered],
                client_name_for_bridge(bridge_name, entry_bus),
                bridge.service_rate,
            )
        )
    return tuple(hops)
