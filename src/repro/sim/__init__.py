"""Discrete-event simulator of the SoC communication sub-system.

A from-scratch continuous-time simulator matching the paper's evaluation
loop: processors emit Poisson request streams into finite buffers, each
bus cluster's arbiter grants one buffer at a time, bridge crossings hop
through inserted bridge buffers, and packets that find a full buffer — or
that exceed the timeout threshold under the timeout policy — are lost.

Public surface:

* :func:`repro.sim.runner.simulate` — run one topology + allocation
  (``backend="heap"`` reference loop, ``backend="batched"`` array
  lane, or ``backend="megabatch"`` replication-stacked kernel; see
  :data:`repro.sim.runner.SIM_BACKENDS`).
* :func:`repro.sim.runner.simulate_block` — one mega-batch kernel cell:
  many seeds of the same configuration in a single array program.
* :func:`repro.sim.runner.replicate` — n seeds, aggregated statistics.
* :class:`repro.sim.runner.SimulationResult` — per-processor losses etc.
* Arbiters in :mod:`repro.sim.arbiter`.
* :class:`repro.sim.batched.BatchedSystem` — the array-native lane
  itself, for callers that drive windows manually.
* :class:`repro.sim.megabatch.MegaBatchLane` — the replication-stacked
  lane, for callers that drive windows manually.
"""

from repro.sim.arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    LongestQueueArbiter,
    RoundRobinArbiter,
    WeightedRandomArbiter,
    make_arbiter,
)
from repro.sim.batched import BatchedSystem
from repro.sim.engine import BatchedSimulator, Simulator
from repro.sim.megabatch import MegaBatchLane, megabatch_supported
from repro.sim.runner import (
    SIM_BACKENDS,
    ReplicationSummary,
    SimulationResult,
    replicate,
    simulate,
    simulate_block,
)
from repro.sim.system import CommunicationSystem, client_name_for_bridge

__all__ = [
    "Arbiter",
    "BatchedSimulator",
    "BatchedSystem",
    "CommunicationSystem",
    "FixedPriorityArbiter",
    "LongestQueueArbiter",
    "MegaBatchLane",
    "ReplicationSummary",
    "RoundRobinArbiter",
    "SIM_BACKENDS",
    "SimulationResult",
    "Simulator",
    "WeightedRandomArbiter",
    "client_name_for_bridge",
    "make_arbiter",
    "megabatch_supported",
    "replicate",
    "simulate",
    "simulate_block",
]
