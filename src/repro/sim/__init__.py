"""Discrete-event simulator of the SoC communication sub-system.

A from-scratch continuous-time simulator matching the paper's evaluation
loop: processors emit Poisson request streams into finite buffers, each
bus cluster's arbiter grants one buffer at a time, bridge crossings hop
through inserted bridge buffers, and packets that find a full buffer — or
that exceed the timeout threshold under the timeout policy — are lost.

Public surface:

* :func:`repro.sim.runner.simulate` — run one topology + allocation.
* :func:`repro.sim.runner.replicate` — n seeds, aggregated statistics.
* :class:`repro.sim.runner.SimulationResult` — per-processor losses etc.
* Arbiters in :mod:`repro.sim.arbiter`.
"""

from repro.sim.arbiter import (
    Arbiter,
    FixedPriorityArbiter,
    LongestQueueArbiter,
    RoundRobinArbiter,
    WeightedRandomArbiter,
    make_arbiter,
)
from repro.sim.engine import Simulator
from repro.sim.runner import (
    ReplicationSummary,
    SimulationResult,
    replicate,
    simulate,
)
from repro.sim.system import CommunicationSystem, client_name_for_bridge

__all__ = [
    "Arbiter",
    "CommunicationSystem",
    "FixedPriorityArbiter",
    "LongestQueueArbiter",
    "ReplicationSummary",
    "RoundRobinArbiter",
    "SimulationResult",
    "Simulator",
    "WeightedRandomArbiter",
    "client_name_for_bridge",
    "make_arbiter",
    "replicate",
    "simulate",
]
