"""Fast-path RNG helpers for the discrete-event simulator.

The simulator's hottest random draws are exponential variates — one per
bus transaction and one per packet arrival.  Drawing them through numpy
one at a time pays the full ``Generator`` dispatch cost per event;
drawing them in chunks amortises it roughly tenfold while consuming the
underlying bit stream **identically** (numpy generates a size-``n``
batch by repeating the single-draw ziggurat step ``n`` times), so
fixed-seed simulations are bitwise unchanged.

The pool must be the *only* consumer of its generator for the identity
to hold — callers that interleave other draws on the same generator
(e.g. a randomised arbiter) must keep drawing scalars instead.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class ExponentialPool:
    """Chunked standard-exponential variates from one generator.

    ``pool.next() * scale`` is bitwise identical to
    ``rng.exponential(scale)`` on a generator in the same state, because
    ``Generator.exponential(scale)`` is exactly
    ``scale * standard_exponential()`` and batched ``standard_exponential``
    draws consume the bit stream like repeated scalar draws.
    """

    __slots__ = ("_rng", "_chunk", "_buf", "_index")

    def __init__(self, rng: np.random.Generator, chunk: int = 512) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self._rng = rng
        self._chunk = chunk
        self._buf = rng.standard_exponential(chunk)
        self._index = 0

    def next(self) -> float:
        """The next standard-exponential variate (mean 1).

        Returned as a Python float (exact same 64-bit value) so numpy
        scalar types never leak into the simulation clock, matching the
        scalar-draw path's return type.
        """
        i = self._index
        if i >= self._chunk:
            self._buf = self._rng.standard_exponential(self._chunk)
            i = 0
        self._index = i + 1
        return float(self._buf[i])

    def take(self, count: int) -> np.ndarray:
        """The next ``count`` variates as one float64 array.

        Stream-identical to ``count`` successive :meth:`next` calls —
        the pool still refills in ``chunk``-sized batches, so mixing
        :meth:`take` and :meth:`next` on one pool consumes the generator
        exactly like scalar draws would.  The batched simulation lane
        uses this to pre-draw service variates into a flat array it then
        indexes without any per-event method call.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        out = np.empty(count)
        filled = 0
        while filled < count:
            if self._index >= self._chunk:
                self._buf = self._rng.standard_exponential(self._chunk)
                self._index = 0
            step = min(self._chunk - self._index, count - filled)
            out[filled:filled + step] = self._buf[
                self._index:self._index + step
            ]
            self._index += step
            filled += step
        return out


class ExponentialBlockPool:
    """A replication-stacked bank of :class:`ExponentialPool` rows.

    The mega-batch simulation lane advances ``R`` replications of one
    fleet cell in a single array program, so it needs the service
    variates of bus ``b`` for *every* replication as one 2-D ``(R,
    count)`` block.  Each row is backed by its own generator — the same
    per-replication substream the serial lanes would hand to that bus —
    and is consumed through a private :class:`ExponentialPool`, so row
    ``r`` of every block is **bitwise identical** to the draws an
    independent pool on the same generator state would produce.  That
    row identity is the RNG-layout contract the mega-batch kernel
    relies on (and the one ``tests/test_megabatch.py`` pins).

    Rows refill independently: :meth:`take_row` advances one
    replication's stream without touching the others, which is what the
    kernel's exact-exhaustion refill protocol requires.
    """

    __slots__ = ("_pools",)

    def __init__(
        self,
        rngs: Sequence[np.random.Generator],
        chunk: int = 512,
    ) -> None:
        if not rngs:
            raise ValueError("block pool needs at least one generator")
        self._pools = [ExponentialPool(rng, chunk) for rng in rngs]

    @property
    def rows(self) -> int:
        """Number of replication rows (independent streams)."""
        return len(self._pools)

    def take_block(self, count: int) -> np.ndarray:
        """The next ``count`` variates of every row as an (R, count) array.

        Row ``r`` equals ``ExponentialPool(rng_r).take(count)`` on a
        generator in the same state — streams never mix across rows.
        """
        out = np.empty((len(self._pools), count))
        for r, pool in enumerate(self._pools):
            out[r] = pool.take(count)
        return out

    def take_row(self, row: int, count: int) -> np.ndarray:
        """The next ``count`` variates of one row (a per-replication refill)."""
        return self._pools[row].take(count)
