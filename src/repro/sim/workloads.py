"""Trace-driven workloads: replaying recorded request streams.

Production traces are the gold standard the paper's "better profiling"
points at.  Real traces are proprietary (the substitution DESIGN.md
records), so this module provides both sides of the workflow:

* :class:`RequestTrace` — an explicit list of (time, flow) request
  events, loadable from a simple two-column text format,
* :class:`TraceTraffic` — a :class:`~repro.arch.traffic.TrafficDescriptor`
  that replays one flow's recorded interarrivals (cycling past the end,
  so finite traces drive arbitrarily long simulations),
* :func:`record_trace` — synthesise a trace *from* the library's own
  traffic models, closing the loop for tests and demos.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.arch.topology import Topology
from repro.arch.traffic import TrafficDescriptor
from repro.errors import ModelError


@dataclass(frozen=True)
class RequestTrace:
    """A recorded request stream: sorted (time, flow name) events."""

    events: Tuple[Tuple[float, str], ...]

    def __post_init__(self) -> None:
        times = [t for t, _f in self.events]
        if any(t < 0 for t in times):
            raise ModelError("trace times must be >= 0")
        if any(b < a for a, b in zip(times, times[1:])):
            raise ModelError("trace events must be time-sorted")

    @property
    def num_events(self) -> int:
        return len(self.events)

    @property
    def horizon(self) -> float:
        """Time of the last event (0 for an empty trace)."""
        return self.events[-1][0] if self.events else 0.0

    def flows(self) -> List[str]:
        """Distinct flow names appearing in the trace, sorted."""
        return sorted({f for _t, f in self.events})

    def interarrivals(self, flow: str) -> np.ndarray:
        """Interarrival gaps of one flow (first gap from time zero)."""
        times = [t for t, f in self.events if f == flow]
        if not times:
            raise ModelError(f"trace has no events for flow {flow!r}")
        return np.diff([0.0] + times)

    def mean_rate(self, flow: str) -> float:
        """Empirical mean rate of one flow."""
        times = [t for t, f in self.events if f == flow]
        if not times:
            raise ModelError(f"trace has no events for flow {flow!r}")
        if times[-1] <= 0:
            raise ModelError(
                f"flow {flow!r} events all at time zero; rate undefined"
            )
        return len(times) / times[-1]

    # -- serialisation -----------------------------------------------------

    def dumps(self) -> str:
        """Two-column text form: ``<time> <flow>`` per line."""
        return "\n".join(f"{t!r} {f}" for t, f in self.events) + "\n"

    @classmethod
    def loads(cls, text: str) -> "RequestTrace":
        """Parse the two-column text form."""
        events: List[Tuple[float, str]] = []
        for line_no, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise ModelError(
                    f"trace line {line_no}: expected '<time> <flow>'"
                )
            try:
                t = float(parts[0])
            except ValueError:
                raise ModelError(
                    f"trace line {line_no}: bad time {parts[0]!r}"
                ) from None
            events.append((t, parts[1]))
        return cls(tuple(events))


class TraceTraffic(TrafficDescriptor):
    """Replay one flow's recorded interarrival gaps.

    Cycles through the recorded gaps; the RNG argument of
    :meth:`sample_interarrivals` is unused (replay is deterministic) but
    kept for interface compatibility.
    """

    #: The replay cursor lives on the descriptor, not the generator, so
    #: sampling is stateful: replications sharing this object consume
    #: one global gap sequence in call order.  The mega-batch lane must
    #: therefore fall back to sequential per-replication runs (see
    #: :attr:`TrafficDescriptor.stateless_sampling`).
    stateless_sampling = False

    def __init__(self, gaps: Sequence[float]) -> None:
        arr = np.asarray(list(gaps), dtype=float)
        if arr.size == 0:
            raise ModelError("trace traffic needs at least one gap")
        if (arr < 0).any():
            raise ModelError("gaps must be >= 0")
        if arr.sum() <= 0:
            raise ModelError("gaps must have positive total duration")
        self._gaps = arr
        self._cursor = 0

    @property
    def mean_rate(self) -> float:
        return float(self._gaps.size / self._gaps.sum())

    def sample_interarrivals(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        if count < 0:
            raise ModelError(f"count must be >= 0, got {count}")
        # One gather instead of a per-gap Python loop: modular index
        # arithmetic reproduces the cycling cursor exactly, so replayed
        # gap sequences are unchanged for any chunking of the calls.
        gaps = self._gaps
        out = gaps[(self._cursor + np.arange(count)) % gaps.size]
        self._cursor = (self._cursor + count) % gaps.size
        return out

    def scaled(self, factor: float) -> "TraceTraffic":
        if factor <= 0:
            raise ModelError(f"scale factor must be > 0, got {factor}")
        return TraceTraffic(self._gaps / factor)


def record_trace(
    topology: Topology,
    duration: float,
    seed: int = 0,
) -> RequestTrace:
    """Synthesise a request trace from a topology's traffic models."""
    if duration <= 0:
        raise ModelError(f"duration must be > 0, got {duration}")
    rng_root = np.random.SeedSequence(seed)
    streams = rng_root.spawn(len(topology.flows))
    events: List[Tuple[float, str]] = []
    for stream, flow_name in zip(streams, sorted(topology.flows)):
        flow = topology.flows[flow_name]
        rng = np.random.default_rng(stream)
        t = 0.0
        while True:
            gap = float(flow.traffic.sample_interarrivals(rng, 1)[0])
            t += gap
            if t > duration:
                break
            events.append((t, flow_name))
    events.sort(key=lambda e: (e[0], e[1]))
    return RequestTrace(tuple(events))


def replay_topology(topology: Topology, trace: RequestTrace) -> Topology:
    """A copy of ``topology`` whose flows replay the trace.

    Flows absent from the trace are dropped (they generated nothing in
    the recorded window).
    """
    replayed = Topology(f"{topology.name}-replay")
    for bus in topology.buses.values():
        replayed.add_bus(bus.name)
    for link in topology.links:
        replayed.add_link(link.bus_a, link.bus_b)
    for bridge in topology.bridges.values():
        replayed.add_bridge(
            bridge.name, bridge.bus_a, bridge.bus_b,
            service_rate=bridge.service_rate,
            loss_weight=bridge.loss_weight,
        )
    for proc in topology.processors.values():
        replayed.add_processor(
            proc.name, proc.bus, proc.service_rate, proc.loss_weight
        )
    traced_flows = set(trace.flows())
    for name, flow in topology.flows.items():
        if name not in traced_flows:
            continue
        replayed.add_flow(
            name,
            flow.source,
            flow.destination,
            TraceTraffic(trace.interarrivals(name)),
        )
    replayed.validate()
    return replayed
