"""Packet sources: processors emitting their flows' request streams."""

from __future__ import annotations

import itertools
from typing import Callable, Optional

import numpy as np

from repro.arch.topology import Flow
from repro.sim.engine import Simulator
from repro.sim.packet import Hop, Packet


class FlowSource:
    """Generates the packets of one flow.

    Draws interarrival times from the flow's traffic descriptor using its
    own RNG substream — refilled in chunks of ``batch`` so the per-event
    cost is one array index, not a generator call — stamps each packet
    with the flow's hop itinerary, and hands it to ``deliver`` (the
    system's injection point).
    """

    __slots__ = (
        "flow",
        "hops",
        "simulator",
        "rng",
        "deliver",
        "batch",
        "_gaps",
        "_gap_index",
    )

    _ids = itertools.count(1)

    def __init__(
        self,
        flow: Flow,
        hops: tuple,
        simulator: Simulator,
        rng: np.random.Generator,
        deliver: Callable[[Packet], None],
        batch: int = 256,
    ) -> None:
        self.flow = flow
        self.hops = hops
        self.simulator = simulator
        self.rng = rng
        self.deliver = deliver
        self.batch = batch
        self._gaps: Optional[np.ndarray] = None
        self._gap_index = 0

    def start(self) -> None:
        """Schedule the first arrival."""
        self.simulator.schedule(self._next_gap(), self._arrive)

    def _next_gap(self) -> float:
        if self._gaps is None or self._gap_index >= len(self._gaps):
            self._gaps = self.flow.traffic.sample_interarrivals(
                self.rng, self.batch
            )
            self._gap_index = 0
        gap = float(self._gaps[self._gap_index])
        self._gap_index += 1
        return gap

    def _arrive(self) -> None:
        packet = Packet(
            packet_id=next(self._ids),
            flow=self.flow.name,
            source=self.flow.source,
            destination=self.flow.destination,
            hops=self.hops,
            created_at=self.simulator.now,
        )
        self.deliver(packet)
        self.simulator.schedule(self._next_gap(), self._arrive)
