"""Finite FIFO buffers with loss accounting.

Two representations of the same finite FIFO live here:

:class:`FiniteBuffer`
    The heap engine's object buffer: a deque of :class:`Packet`
    instances with offer/peek/pop methods and occupancy statistics.

:class:`PacketRing`
    The batched lane's array buffer: a fixed-capacity circular store of
    the four scalars a queued packet actually needs — flow id, hop
    index, creation time, enqueue time — held in parallel slot lists.
    The hot loop binds the slot lists to locals and indexes them
    directly; the class only owns construction and inspection.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.sim.packet import Packet


class FiniteBuffer:
    """A finite FIFO buffer owned by one bus client.

    ``capacity`` slots; :meth:`offer` returns False (and counts a loss)
    when the buffer is full — the core loss mechanism of the paper's
    model.
    """

    __slots__ = (
        "name",
        "capacity",
        "_queue",
        "offered",
        "lost",
        "accepted",
        "_area",
        "_last_change",
    )

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 0:
            raise SimulationError(
                f"buffer {name!r}: capacity must be >= 0, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self._queue: Deque[Packet] = deque()
        self.offered = 0
        self.lost = 0
        self.accepted = 0
        # Time-weighted occupancy accumulator for mean-occupancy stats.
        self._area = 0.0
        self._last_change = 0.0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Current number of queued packets."""
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    # ------------------------------------------------------------------

    def _advance_area(self, now: float) -> None:
        self._area += len(self._queue) * (now - self._last_change)
        self._last_change = now

    def offer(self, packet: Packet, now: float) -> bool:
        """Try to enqueue; returns False and counts a loss when full."""
        self.offered += 1
        if self.is_full:
            self.lost += 1
            return False
        self._advance_area(now)
        packet.enqueued_at = now
        self._queue.append(packet)
        self.accepted += 1
        return True

    def peek(self) -> Packet:
        """Head-of-line packet without removing it."""
        if not self._queue:
            raise SimulationError(f"buffer {self.name!r} is empty")
        return self._queue[0]

    def pop(self, now: float) -> Packet:
        """Remove and return the head-of-line packet."""
        if not self._queue:
            raise SimulationError(f"buffer {self.name!r} is empty")
        self._advance_area(now)
        return self._queue.popleft()

    def mean_occupancy(self, now: float) -> float:
        """Time-average occupancy up to ``now``."""
        if now <= 0:
            return 0.0
        area = self._area + len(self._queue) * (now - self._last_change)
        return area / now


class PacketRing:
    """Array-native FIFO ring of queued packets for the batched lane.

    ``capacity`` slots; a queued packet occupies one slot across five
    parallel lists (``flow``/``hop``/``created``/``enqueued``/``scale``
    — the last caches the stored hop's inverse service rate so a grant
    reads one subscript instead of chasing the flow's hop table).  The
    batched simulation loop manipulates ``head``/``count`` and the slot
    lists directly — Python lists beat numpy here because every access
    is a single scalar — so this class deliberately has *no* per-packet
    methods on the hot path.  Capacity-zero rings are legal and always
    full (the simulator's "missing bridge buffer loses everything"
    convention).
    """

    __slots__ = ("name", "capacity", "flow", "hop", "created",
                 "enqueued", "scale", "head", "count")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 0:
            raise SimulationError(
                f"ring {name!r}: capacity must be >= 0, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self.flow: List[int] = [0] * capacity
        self.hop: List[int] = [0] * capacity
        self.created: List[float] = [0.0] * capacity
        self.enqueued: List[float] = [0.0] * capacity
        self.scale: List[float] = [0.0] * capacity
        self.head = 0
        self.count = 0

    @property
    def occupancy(self) -> int:
        """Current number of queued packets."""
        return self.count

    def snapshot(self) -> List[Tuple[int, int, float, float]]:
        """Queued ``(flow, hop, created, enqueued)`` tuples in FIFO order.

        Inspection/testing helper — never called from the hot loop.
        """
        cap = self.capacity
        out = []
        for k in range(self.count):
            i = (self.head + k) % cap
            out.append(
                (self.flow[i], self.hop[i], self.created[i], self.enqueued[i])
            )
        return out


def replicated_slot_arrays(
    capacities: Sequence[int], replications: int
) -> Tuple[np.ndarray, Dict[str, np.ndarray]]:
    """Replication-stacked slot storage for a bank of packet rings.

    The mega-batch lane stores ``R`` replications of every
    :class:`PacketRing` as flat ``(R, total_slots)`` arrays — the same
    five parallel fields a single ring keeps as lists, with ring ``g``'s
    slots occupying columns ``offsets[g]:offsets[g + 1]`` of every row.
    Returns ``(offsets, fields)`` where ``offsets`` has length
    ``len(capacities) + 1`` and ``fields`` maps the slot-field names
    (``flow``/``hop``: int64, ``created``/``enqueued``/``scale``:
    float64) to zero-initialised arrays.  Capacity-zero rings get an
    empty column span — legal and always full, exactly like the
    object ring.
    """
    if replications < 1:
        raise SimulationError(
            f"replications must be >= 1, got {replications}"
        )
    caps = np.asarray(list(capacities), dtype=np.int64)
    if caps.size and caps.min() < 0:
        raise SimulationError("ring capacities must be >= 0")
    offsets = np.zeros(caps.size + 1, dtype=np.int64)
    np.cumsum(caps, out=offsets[1:])
    total = int(offsets[-1])
    fields = {
        "flow": np.zeros((replications, total), dtype=np.int64),
        "hop": np.zeros((replications, total), dtype=np.int64),
        "created": np.zeros((replications, total)),
        "enqueued": np.zeros((replications, total)),
        "scale": np.zeros((replications, total)),
    }
    return offsets, fields
