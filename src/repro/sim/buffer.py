"""Finite FIFO buffers with loss accounting."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.sim.packet import Packet


class FiniteBuffer:
    """A finite FIFO buffer owned by one bus client.

    ``capacity`` slots; :meth:`offer` returns False (and counts a loss)
    when the buffer is full — the core loss mechanism of the paper's
    model.
    """

    __slots__ = (
        "name",
        "capacity",
        "_queue",
        "offered",
        "lost",
        "accepted",
        "_area",
        "_last_change",
    )

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 0:
            raise SimulationError(
                f"buffer {name!r}: capacity must be >= 0, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self._queue: Deque[Packet] = deque()
        self.offered = 0
        self.lost = 0
        self.accepted = 0
        # Time-weighted occupancy accumulator for mean-occupancy stats.
        self._area = 0.0
        self._last_change = 0.0

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Current number of queued packets."""
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        return not self._queue

    @property
    def is_full(self) -> bool:
        return len(self._queue) >= self.capacity

    # ------------------------------------------------------------------

    def _advance_area(self, now: float) -> None:
        self._area += len(self._queue) * (now - self._last_change)
        self._last_change = now

    def offer(self, packet: Packet, now: float) -> bool:
        """Try to enqueue; returns False and counts a loss when full."""
        self.offered += 1
        if self.is_full:
            self.lost += 1
            return False
        self._advance_area(now)
        packet.enqueued_at = now
        self._queue.append(packet)
        self.accepted += 1
        return True

    def peek(self) -> Packet:
        """Head-of-line packet without removing it."""
        if not self._queue:
            raise SimulationError(f"buffer {self.name!r} is empty")
        return self._queue[0]

    def pop(self, now: float) -> Packet:
        """Remove and return the head-of-line packet."""
        if not self._queue:
            raise SimulationError(f"buffer {self.name!r} is empty")
        self._advance_area(now)
        return self._queue.popleft()

    def mean_occupancy(self, now: float) -> float:
        """Time-average occupancy up to ``now``."""
        if now <= 0:
            return 0.0
        area = self._area + len(self._queue) * (now - self._last_change)
        return area / now
