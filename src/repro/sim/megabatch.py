"""Mega-batch replication lane: one array program per fleet cell.

:class:`MegaBatchLane` stacks ``R`` replications of one simulation cell
(same topology, capacities, arbiter and timeout — only the seed varies)
into flat arrays with a leading replication axis, so **one kernel
invocation advances every replication at once** instead of running the
batched lane ``R`` times:

* per-replication RNG streams are spawned exactly like
  :class:`~repro.sim.system.CommunicationSystem` (``SeedSequence(seed)
  .spawn(B + S)``, bus streams first), so every draw is bit-for-bit the
  stream the serial lanes would consume;
* interarrival gaps are pre-drawn per ``(replication, source)`` in
  source-batch-sized chunks — the identical
  ``sample_interarrivals(rng, batch)`` call sequence the heap engine's
  :class:`~repro.sim.processor.FlowSource` makes, which matters for
  descriptors that re-randomise per call;
* service variates are pre-taken per bus through
  :class:`~repro.sim.fastpath.ExponentialBlockPool`, one row per
  replication, stream-identical to each replication's own pool;
* queued packets live in replication-stacked
  :func:`~repro.sim.buffer.replicated_slot_arrays` slot arrays, and the
  event calendar is a fixed ``(R, S + B)`` array (see
  :mod:`repro.sim._mbkernel`).

Three interchangeable engines execute the same kernel — ``numba``
(``REPRO_SIM_JIT=1``, only when numba is importable), ``cc`` (the
:mod:`repro.sim._mbcc` C build, default when a system compiler exists),
``numpy`` (the :mod:`repro.sim._mblockstep` lockstep fallback) — plus
``python``, the interpreted scalar kernel kept as the correctness
oracle.  ``REPRO_SIM_ENGINE`` forces one explicitly.  The engine choice
never affects results (bitwise, test-enforced) and is therefore *not*
part of scenario cache keys; the backend is.

The lane only takes the kernel path for configurations it can replay
exactly: deterministic arbiters (:data:`~repro.sim.arbiter
.KERNEL_ARBITERS`) and stateless traffic descriptors
(:attr:`~repro.arch.traffic.TrafficDescriptor.stateless_sampling`).
:func:`megabatch_supported` is the gate; unsupported cells fall back to
sequential per-replication ``backend="batched"`` runs in
:func:`repro.sim.runner.simulate_block`.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.arch.topology import Topology
from repro.errors import SimulationError
from repro.sim import _mbcc, _mbkernel
from repro.sim.arbiter import KERNEL_ARBITERS
from repro.sim.batched import BatchedSystem
from repro.sim.buffer import replicated_slot_arrays
from repro.sim.fastpath import ExponentialBlockPool
from repro.sim.monitor import Monitor
from repro.sim.system import CommunicationSystem
from repro.sim._mbkernel import SEQ_SENTINEL

#: Gap chunks pre-drawn per (replication, source) between kernel
#: invocations.  Each chunk is one ``sample_interarrivals(rng, batch)``
#: call of exactly the source's batch size — never merged into one big
#: call, because descriptors may re-randomise per call (OnOffTraffic
#: draws a fresh phase each chunk).
GAP_CHUNKS = 4

#: Service variates pre-taken per (replication, bus) between kernel
#: invocations.  Any depth is stream-identical (the underlying pool
#: refills in its own chunks); 2048 = four pool chunks keeps refill
#: round-trips rare.
SVC_DEPTH = 2048

#: Engine names accepted by :func:`resolve_engine` / REPRO_SIM_ENGINE.
ENGINES = ("numba", "cc", "numpy", "python")

_numba_advance = None
_numba_failed = False


def _load_numba():
    """The njit-compiled kernel, or ``None`` when numba is absent."""
    global _numba_advance, _numba_failed
    if _numba_advance is not None or _numba_failed:
        return _numba_advance
    try:
        import numba

        _numba_advance = numba.njit(_mbkernel.advance)
    except Exception:
        _numba_failed = True
        return None
    return _numba_advance


def available_engines() -> Dict[str, bool]:
    """Availability of each mega-batch engine in this environment."""
    return {
        "numba": _load_numba() is not None,
        "cc": _mbcc.load_kernel() is not None,
        "numpy": True,
        "python": True,
    }


def resolve_engine(requested: Optional[str] = None) -> str:
    """Pick the kernel engine.

    Priority: explicit ``requested`` > ``REPRO_SIM_ENGINE`` >
    ``REPRO_SIM_JIT=1`` (numba when importable) > the C build when a
    system compiler exists > numpy.  Forcing an unavailable engine
    raises :class:`SimulationError`; the automatic path only ever
    degrades.
    """
    name = requested or os.environ.get("REPRO_SIM_ENGINE") or ""
    if name:
        if name not in ENGINES:
            raise SimulationError(
                f"unknown mega-batch engine {name!r}; "
                f"choose from {ENGINES}"
            )
        if name == "numba" and _load_numba() is None:
            raise SimulationError(
                "mega-batch engine 'numba' requested but numba is not "
                "importable"
            )
        if name == "cc" and _mbcc.load_kernel() is None:
            raise SimulationError(
                "mega-batch engine 'cc' requested but no C kernel could "
                "be built (no compiler, failed build, or REPRO_SIM_CC=0)"
            )
        return name
    if os.environ.get("REPRO_SIM_JIT") == "1" and _load_numba() is not None:
        return "numba"
    if _mbcc.load_kernel() is not None:
        return "cc"
    return "numpy"


def megabatch_supported(topology: Topology, arbiter_kind: str) -> bool:
    """Whether the kernel path can replay this cell exactly.

    Requires a deterministic arbiter (the kernel inlines those three
    policies) and stateless traffic descriptors (a stateful descriptor
    like TraceTraffic shares its replay cursor across replications, so
    draws must not be interleaved).  Unsupported cells still run under
    ``backend="megabatch"`` — via the sequential batched fallback.
    """
    if arbiter_kind not in KERNEL_ARBITERS:
        return False
    return all(
        flow.traffic.stateless_sampling
        for flow in topology.flows.values()
    )


class MegaBatchLane:
    """All replications of one simulation cell as a single array program.

    Parameters mirror :func:`repro.sim.runner.simulate`, except
    ``seeds`` — one per replication — replaces the single ``seed``.
    Construction builds one template system (structure only) plus the
    per-replication RNG streams; :meth:`start` schedules first arrivals;
    :meth:`run_until` advances every replication with kernel
    invocations, refilling pre-drawn buffers between them;
    :meth:`monitor_for` folds one replication's counters into a
    :class:`Monitor` for result extraction.
    """

    def __init__(
        self,
        topology: Topology,
        capacities: Dict[str, int],
        seeds: Sequence[int],
        arbiter_kind: str = "longest_queue",
        arbiter_weights: Optional[Dict[str, float]] = None,
        timeout_threshold: Optional[float] = None,
        engine: Optional[str] = None,
    ) -> None:
        if not seeds:
            raise SimulationError("mega-batch lane needs at least one seed")
        if not megabatch_supported(topology, arbiter_kind):
            raise SimulationError(
                "mega-batch kernel requires a deterministic arbiter "
                f"({KERNEL_ARBITERS}) and stateless traffic descriptors"
            )
        self.engine = resolve_engine(engine)
        self.seeds = [int(s) for s in seeds]
        R = len(self.seeds)
        self.R = R

        # -- template system: structure only (wiring, scales, batches);
        # its RNG streams are never consumed.
        template = CommunicationSystem(
            topology,
            capacities,
            arbiter_kind=arbiter_kind,
            arbiter_weights=arbiter_weights,
            timeout_threshold=timeout_threshold,
            seed=0,
        )
        ref = BatchedSystem(template)
        S = len(ref._traffic)
        B = len(ref.clusters)
        G = len(ref.rings)
        P = len(ref._proc_names)
        self.S, self.B, self.G, self.P = S, B, G, P
        self.W = S + B
        self.svc_depth = SVC_DEPTH
        self.proc_names: List[str] = list(ref._proc_names)
        self.timeout = (
            float(ref.timeout_threshold)
            if ref.timeout_threshold is not None
            else -1.0  # sentinel: ClusterBus validates real thresholds > 0
        )

        # -- static structure arrays ---------------------------------
        self.cap = np.asarray(ref._cap, dtype=np.int64)
        self.ring_bus = np.asarray(ref._ring_cluster, dtype=np.int64)
        # Rings are registered cluster by cluster, so each cluster's
        # ring ids are one contiguous ascending span — the kernels
        # depend on it, so verify rather than assume.
        cl_off = np.zeros(B + 1, dtype=np.int64)
        for b, ids in enumerate(ref._cl_rings):
            if list(ids) != list(range(ids[0], ids[0] + len(ids))):
                raise SimulationError(
                    f"cluster {b} ring ids are not contiguous: {ids}"
                )
            if int(ids[0]) != int(cl_off[b]):
                raise SimulationError(
                    f"cluster {b} rings do not continue the global span"
                )
            cl_off[b + 1] = ids[0] + len(ids)
        if int(cl_off[-1]) != G:
            raise SimulationError("cluster ring spans do not cover all rings")
        self.cl_off = cl_off
        self.cl_width = np.diff(cl_off)
        arb = np.asarray(ref._arb_kind, dtype=np.int64)
        if arb.size and (arb.min() != arb.max()):
            raise SimulationError(
                "mega-batch kernel requires one arbiter policy per cell"
            )
        self.arb_kind = arb
        self.arb_tag = int(arb[0]) if arb.size else 0

        Hmax = max(len(bufs) for bufs in ref._flow_bufs)
        self.Hmax = Hmax
        self.flow_ring = np.zeros((S, Hmax), dtype=np.int64)
        self.flow_scale = np.zeros((S, Hmax))
        for s, (bufs, scales) in enumerate(
            zip(ref._flow_bufs, ref._flow_scale)
        ):
            self.flow_ring[s, : len(bufs)] = bufs
            self.flow_scale[s, : len(scales)] = scales
        self.flow_src = np.asarray(ref._flow_src, dtype=np.int64)
        self.flow_last = np.asarray(ref._flow_last, dtype=np.int64)
        self.first_bus = self.ring_bus[self.flow_ring[:, 0]]
        self._traffic = list(ref._traffic)
        self._src_batch = [int(n) for n in ref._src_batch]

        # -- replication-stacked dynamic state -----------------------
        self.slot_off, fields = replicated_slot_arrays(ref._cap, R)
        self.sflow = fields["flow"]
        self.shop = fields["hop"]
        self.screa = fields["created"]
        self.senq = fields["enqueued"]
        self.sscale = fields["scale"]
        self.T = int(self.slot_off[-1])

        self.ev_time = np.full((R, self.W), np.inf)
        self.ev_seq = np.full((R, self.W), SEQ_SENTINEL, dtype=np.int64)
        self.next_id = np.zeros(R, dtype=np.int64)
        self.head = np.zeros((R, G), dtype=np.int64)
        self.cnt = np.zeros((R, G), dtype=np.int64)
        self.busy = np.zeros((R, B), dtype=np.int64)
        self.granted = np.full((R, B), -1, dtype=np.int64)
        self.rr_last = np.full((R, B), -1, dtype=np.int64)

        self.svc = np.zeros((R, B, SVC_DEPTH))
        self.svc_idx = np.zeros((R, B), dtype=np.int64)
        max_batch = max(self._src_batch) if self._src_batch else 1
        self.gap_depth = GAP_CHUNKS * max_batch
        self.gaps = np.zeros((R, S, self.gap_depth))
        self.gap_idx = np.zeros((R, S), dtype=np.int64)
        self.gap_len = np.zeros((R, S), dtype=np.int64)
        for s, batch in enumerate(self._src_batch):
            self.gap_len[:, s] = GAP_CHUNKS * batch

        self.offered = np.zeros((R, P), dtype=np.int64)
        self.lost = np.zeros((R, P), dtype=np.int64)
        self.timed_out = np.zeros((R, P), dtype=np.int64)
        self.delivered = np.zeros((R, P), dtype=np.int64)
        self.wait_sum = np.zeros(R)
        self.wait_cnt = np.zeros(R, dtype=np.int64)
        self.e2e_sum = np.zeros(R)
        self.paused = np.zeros(R, dtype=np.int64)
        self._cols = np.arange(int(self.cl_width.max()) if B else 1)[
            None, :
        ]

        # -- per-replication RNG streams: the exact CommunicationSystem
        # layout — SeedSequence(seed).spawn(B + S), bus streams first,
        # then flow streams in sources order.
        self._flow_rngs: List[List[np.random.Generator]] = []
        bus_rngs: List[List[np.random.Generator]] = []
        for seed in self.seeds:
            children = np.random.SeedSequence(seed).spawn(B + S)
            bus_rngs.append(
                [np.random.default_rng(c) for c in children[:B]]
            )
            self._flow_rngs.append(
                [np.random.default_rng(c) for c in children[B:]]
            )
        # One block pool per bus, one row per replication.  Each pool
        # draws its first chunk at construction, exactly like the
        # ExponentialPool inside every replication's ClusterBus.
        self._svc_pools = [
            ExponentialBlockPool([bus_rngs[r][b] for r in range(R)])
            for b in range(B)
        ]

        self._started = False
        self._now = 0.0
        self._setup_engine()

    # ------------------------------------------------------------------

    def _setup_engine(self) -> None:
        if self.engine in ("python", "numba"):
            fn = (
                _mbkernel.advance
                if self.engine == "python"
                else _load_numba()
            )
            kargs = (
                self.cap, self.slot_off, self.ring_bus, self.cl_off,
                self.arb_kind, self.flow_src, self.flow_last,
                self.flow_ring, self.flow_scale, self.first_bus,
                self.ev_time, self.ev_seq, self.next_id, self.head,
                self.cnt, self.busy, self.granted, self.rr_last,
                self.sflow, self.shop, self.screa, self.senq,
                self.sscale, self.svc, self.svc_idx, self.gaps,
                self.gap_idx, self.gap_len, self.offered, self.lost,
                self.timed_out, self.delivered, self.wait_sum,
                self.wait_cnt, self.e2e_sum, self.paused,
            )
            timeout = self.timeout
            self._advance = lambda end: int(fn(end, timeout, *kargs))
        elif self.engine == "cc":
            lib = _mbcc.load_kernel()
            st = _mbcc.MBState()
            st.R, st.S, st.B, st.G, st.P = (
                self.R, self.S, self.B, self.G, self.P,
            )
            st.W, st.D = self.W, self.svc_depth
            st.L, st.H, st.T = self.gap_depth, self.Hmax, self.T
            st.timeout = self.timeout
            pi64 = _mbcc._PI64
            pf64 = _mbcc._PF64
            for name, ptype in (
                ("cap", pi64), ("slot_off", pi64), ("ring_bus", pi64),
                ("cl_off", pi64), ("arb_kind", pi64), ("flow_src", pi64),
                ("flow_last", pi64), ("flow_ring", pi64),
                ("flow_scale", pf64), ("first_bus", pi64),
                ("ev_time", pf64), ("ev_seq", pi64), ("next_id", pi64),
                ("head", pi64), ("cnt", pi64), ("busy", pi64),
                ("granted", pi64), ("rr_last", pi64), ("sflow", pi64),
                ("shop", pi64), ("screa", pf64), ("senq", pf64),
                ("sscale", pf64), ("svc", pf64), ("svc_idx", pi64),
                ("gaps", pf64), ("gap_idx", pi64), ("gap_len", pi64),
                ("offered", pi64), ("lost", pi64), ("timed_out", pi64),
                ("delivered", pi64), ("wait_sum", pf64),
                ("wait_cnt", pi64), ("e2e_sum", pf64), ("paused", pi64),
            ):
                arr = getattr(self, name)
                setattr(st, name, arr.ctypes.data_as(ptype))
            self._cstate = st  # keeps the array pointers alive
            import ctypes

            ref = ctypes.byref(st)
            self._advance = lambda end: int(lib.mb_advance(ref, end))
        else:  # numpy lockstep
            from repro.sim import _mblockstep

            self._advance = lambda end: _mblockstep.advance(self, end)

    # ------------------------------------------------------------------

    def _refill_gaps(self, r: int, s: int) -> None:
        """Redraw source ``s``'s gap row for replication ``r``.

        ``GAP_CHUNKS`` separate batch-sized ``sample_interarrivals``
        calls — the serial lanes' exact call sequence, which stateful-
        per-call descriptors (phase re-randomisation) depend on.
        """
        traffic = self._traffic[s]
        rng = self._flow_rngs[r][s]
        batch = self._src_batch[s]
        row = self.gaps[r, s]
        for k in range(GAP_CHUNKS):
            row[k * batch : (k + 1) * batch] = (
                traffic.sample_interarrivals(rng, batch)
            )
        self.gap_idx[r, s] = 0

    def _refill_exhausted(self) -> None:
        for r, s in np.argwhere(self.gap_idx >= self.gap_len):
            self._refill_gaps(int(r), int(s))
        for r, b in np.argwhere(self.svc_idx >= self.svc_depth):
            self.svc[r, b] = self._svc_pools[b].take_row(
                int(r), self.svc_depth
            )
            self.svc_idx[r, b] = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Draw first gap chunks and schedule every first arrival.

        First arrivals get sequence numbers ``0..S-1`` per replication,
        exactly like each replication's own heap engine.
        """
        if self._started:
            raise SimulationError("MegaBatchLane already started")
        self._started = True
        for r in range(self.R):
            for s in range(self.S):
                self._refill_gaps(r, s)
                self.ev_time[r, s] = 0.0 + self.gaps[r, s, 0]
                self.ev_seq[r, s] = s
                self.gap_idx[r, s] = 1
            self.next_id[r] = self.S
        for b, pool in enumerate(self._svc_pools):
            self.svc[:, b, :] = pool.take_block(self.svc_depth)

    def run_until(self, end_time: float) -> None:
        """Advance every replication through ``end_time``.

        Same boundary semantics as the serial lanes: events scheduled
        exactly at ``end_time`` execute.  Each kernel invocation runs
        until every replication is drained or paused for a refill; the
        wrapper refills exactly the exhausted rows and re-enters.
        Instrumentation is per invocation — the kernels themselves stay
        allocation-free with obs disabled.
        """
        if not self._started:
            raise SimulationError("call start() before run_until()")
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before now {self._now}"
            )
        while True:
            self.paused[:] = 0
            with obs.span("sim.megabatch.kernel") as span:
                span.set("engine", self.engine)
                span.set("replications", self.R)
                npaused = self._advance(end_time)
            obs.counter("sim.megabatch.invocations").inc()
            obs.histogram(
                "sim.megabatch.replications_per_invocation"
            ).observe(float(self.R))
            if not npaused:
                break
            self._refill_exhausted()
        self._now = end_time

    # ------------------------------------------------------------------

    def monitor_for(self, r: int) -> Monitor:
        """Replication ``r``'s statistics as a fresh :class:`Monitor`."""
        return Monitor.from_arrays(
            self.proc_names,
            self.offered[r],
            self.lost[r],
            self.timed_out[r],
            self.delivered[r],
            float(self.wait_sum[r]),
            int(self.wait_cnt[r]),
            float(self.e2e_sum[r]),
        )
