"""High-level simulation entry points and replication statistics.

The paper repeats every experiment for 10 iterations; :func:`replicate`
is that loop, with independent seeds and mean/confidence aggregation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.arch.topology import Topology
from repro.errors import SimulationError
from repro.exec.pool import parallel_map, partition_blocks, resolve_jobs
from repro.sim.system import CommunicationSystem


@dataclass
class SimulationResult:
    """Outcome of one simulation run.

    Loss counts are attributed to the *source* processor of each lost
    packet, matching Figure 3's per-processor bars.
    """

    duration: float
    offered: Dict[str, int]
    lost: Dict[str, int]
    timed_out: Dict[str, int]
    delivered: Dict[str, int]
    mean_waiting_time: float
    mean_end_to_end: float

    @property
    def total_lost(self) -> int:
        """Total packets lost anywhere."""
        return sum(self.lost.values())

    @property
    def total_offered(self) -> int:
        """Total packets generated."""
        return sum(self.offered.values())

    def loss_rate(self, processor: str) -> float:
        """Losses per unit time for one processor."""
        return self.lost.get(processor, 0) / self.duration

    def total_loss_rate(self) -> float:
        """System-wide losses per unit time."""
        return self.total_lost / self.duration

    def loss_fraction(self) -> float:
        """Fraction of offered packets that were lost."""
        if self.total_offered == 0:
            return 0.0
        return self.total_lost / self.total_offered


#: Simulation backends accepted by :func:`simulate`.  ``"heap"`` is the
#: reference engine (one callback per event); ``"batched"`` is the
#: array-native lane of :mod:`repro.sim.batched`, which produces
#: bitwise-identical fixed-seed metrics for deterministic arbiters and
#: statistically equivalent ones under randomised arbitration;
#: ``"megabatch"`` is the replication-stacked kernel of
#: :mod:`repro.sim.megabatch` — one array program advances every
#: replication of a cell at once, with the same bitwise fixed-seed
#: contract as ``"batched"`` (configurations the kernel cannot replay
#: exactly fall back to per-replication batched runs).
SIM_BACKENDS = ("heap", "batched", "megabatch")


def simulate(
    topology: Topology,
    capacities: Dict[str, int],
    duration: float = 10_000.0,
    seed: int = 0,
    arbiter_kind: str = "longest_queue",
    arbiter_weights: Optional[Dict[str, float]] = None,
    timeout_threshold: Optional[float] = None,
    warmup: float = 0.0,
    backend: str = "heap",
) -> SimulationResult:
    """Run one simulation and collect per-processor statistics.

    ``warmup`` discards an initial transient: statistics are measured only
    on the ``[warmup, warmup + duration]`` window by running a first
    segment and snapshotting counters.  Partially consumed RNG buffers
    (interarrival chunks, service pools) are carried across the window
    boundary on both backends, so the split windows consume the bit
    stream exactly like one continuous run.

    ``backend`` selects the event engine (see :data:`SIM_BACKENDS`).
    """
    if warmup < 0:
        raise SimulationError(f"warmup must be >= 0, got {warmup}")
    if backend not in SIM_BACKENDS:
        raise SimulationError(
            f"unknown simulation backend {backend!r}; "
            f"choose from {SIM_BACKENDS}"
        )
    if backend == "megabatch":
        return simulate_block(
            topology,
            capacities,
            duration=duration,
            seeds=[seed],
            arbiter_kind=arbiter_kind,
            arbiter_weights=arbiter_weights,
            timeout_threshold=timeout_threshold,
            warmup=warmup,
        )[0]
    system = CommunicationSystem(
        topology,
        capacities,
        arbiter_kind=arbiter_kind,
        arbiter_weights=arbiter_weights,
        timeout_threshold=timeout_threshold,
        seed=seed,
    )
    if backend == "batched":
        from repro.sim.batched import BatchedSystem

        lane = BatchedSystem(system)
        lane.start()
        advance = lane.run_until
    else:
        for source in system.sources:
            source.start()
        advance = system.simulator.run_until
    baseline_offered: Dict[str, int] = {}
    baseline_lost: Dict[str, int] = {}
    baseline_timeout: Dict[str, int] = {}
    baseline_delivered: Dict[str, int] = {}
    # Instrumentation is per *window*, never per event: the drain loops
    # inside ``advance`` stay allocation-free with obs disabled (the
    # zero-allocation test in tests/test_obs.py pins this).
    if warmup > 0:
        with obs.span("sim.window") as span:
            span.set("backend", backend)
            span.set("phase", "warmup")
            advance(warmup)
        baseline_offered = dict(system.monitor.offered)
        baseline_lost = dict(system.monitor.lost)
        baseline_timeout = dict(system.monitor.timed_out)
        baseline_delivered = dict(system.monitor.delivered)
    with obs.span("sim.window") as span:
        span.set("backend", backend)
        span.set("phase", "measure")
        advance(warmup + duration)
    obs.counter("sim.windows").inc()
    monitor = system.monitor
    offered = {
        p: monitor.offered.get(p, 0) - baseline_offered.get(p, 0)
        for p in topology.processors
    }
    lost = {
        p: monitor.lost.get(p, 0) - baseline_lost.get(p, 0)
        for p in topology.processors
    }
    timed_out = {
        p: monitor.timed_out.get(p, 0) - baseline_timeout.get(p, 0)
        for p in topology.processors
    }
    delivered = {
        p: monitor.delivered.get(p, 0) - baseline_delivered.get(p, 0)
        for p in topology.processors
    }
    return SimulationResult(
        duration=duration,
        offered=offered,
        lost=lost,
        timed_out=timed_out,
        delivered=delivered,
        mean_waiting_time=monitor.mean_waiting_time(),
        mean_end_to_end=monitor.mean_end_to_end(),
    )


def simulate_block(
    topology: Topology,
    capacities: Dict[str, int],
    duration: float = 10_000.0,
    seeds: Sequence[int] = (0,),
    arbiter_kind: str = "longest_queue",
    arbiter_weights: Optional[Dict[str, float]] = None,
    timeout_threshold: Optional[float] = None,
    warmup: float = 0.0,
    engine: Optional[str] = None,
) -> List[SimulationResult]:
    """Run one simulation per seed through the mega-batch kernel.

    All seeds share one cell (same topology, capacities, arbiter and
    timeout); one :class:`~repro.sim.megabatch.MegaBatchLane` advances
    every replication per kernel invocation.  Results are returned in
    seed order and are bitwise identical to running
    ``simulate(..., backend="batched")`` per seed — configurations the
    kernel cannot replay exactly (randomised arbiters, stateful traffic
    descriptors) take exactly that per-seed path as a fallback, so the
    equality is universal.  ``engine`` forces a kernel engine (see
    :func:`repro.sim.megabatch.resolve_engine`).
    """
    if warmup < 0:
        raise SimulationError(f"warmup must be >= 0, got {warmup}")
    seed_list = [int(s) for s in seeds]
    if not seed_list:
        raise SimulationError("simulate_block needs at least one seed")
    from repro.sim.megabatch import MegaBatchLane, megabatch_supported

    if not megabatch_supported(topology, arbiter_kind):
        return [
            simulate(
                topology,
                capacities,
                duration=duration,
                seed=s,
                arbiter_kind=arbiter_kind,
                arbiter_weights=arbiter_weights,
                timeout_threshold=timeout_threshold,
                warmup=warmup,
                backend="batched",
            )
            for s in seed_list
        ]
    lane = MegaBatchLane(
        topology,
        capacities,
        seed_list,
        arbiter_kind=arbiter_kind,
        arbiter_weights=arbiter_weights,
        timeout_threshold=timeout_threshold,
        engine=engine,
    )
    lane.start()
    base_offered = base_lost = base_timeout = base_delivered = None
    if warmup > 0:
        with obs.span("sim.window") as span:
            span.set("backend", "megabatch")
            span.set("phase", "warmup")
            lane.run_until(warmup)
        base_offered = lane.offered.copy()
        base_lost = lane.lost.copy()
        base_timeout = lane.timed_out.copy()
        base_delivered = lane.delivered.copy()
    with obs.span("sim.window") as span:
        span.set("backend", "megabatch")
        span.set("phase", "measure")
        lane.run_until(warmup + duration)
    obs.counter("sim.windows").inc()
    index = {name: i for i, name in enumerate(lane.proc_names)}
    results: List[SimulationResult] = []
    for r in range(lane.R):
        monitor = lane.monitor_for(r)

        def window(counts, baseline):
            return {
                p: int(counts[r, index[p]])
                - (int(baseline[r, index[p]]) if baseline is not None else 0)
                for p in topology.processors
            }

        results.append(
            SimulationResult(
                duration=duration,
                offered=window(lane.offered, base_offered),
                lost=window(lane.lost, base_lost),
                timed_out=window(lane.timed_out, base_timeout),
                delivered=window(lane.delivered, base_delivered),
                # Means are cumulative (warmup included), matching
                # simulate()'s monitor-level means on every backend.
                mean_waiting_time=monitor.mean_waiting_time(),
                mean_end_to_end=monitor.mean_end_to_end(),
            )
        )
    return results


@dataclass
class ReplicationSummary:
    """Mean and spread of per-processor losses over replications."""

    results: List[SimulationResult]

    def __post_init__(self) -> None:
        if not self.results:
            raise SimulationError("no replications supplied")

    @property
    def num_replications(self) -> int:
        return len(self.results)

    def mean_loss(self, processor: str) -> float:
        """Average loss count of one processor across replications."""
        return float(
            np.mean([r.lost.get(processor, 0) for r in self.results])
        )

    def mean_total_loss(self) -> float:
        """Average total loss count across replications."""
        return float(np.mean([r.total_lost for r in self.results]))

    def std_total_loss(self) -> float:
        """Sample standard deviation of total losses."""
        values = [r.total_lost for r in self.results]
        if len(values) < 2:
            return 0.0
        return float(np.std(values, ddof=1))

    def mean_loss_by_processor(self, processors: List[str]) -> Dict[str, float]:
        """Mean loss count per processor, in the given order."""
        return {p: self.mean_loss(p) for p in processors}


#: Replication seed schemes accepted by :func:`replication_seeds`.
SEED_SCHEMES = ("legacy", "spawn")


def replication_seeds(
    replications: int,
    base_seed: int = 0,
    scheme: str = "legacy",
) -> List[int]:
    """Derive one simulation seed per replication.

    ``"legacy"`` (default) is the historical ``base_seed + 1000 * r``
    arithmetic progression, kept so all existing fixed-seed outputs are
    unchanged.  It collides as soon as ``replications > 1000`` or when
    two batches use base seeds less than ``1000 * replications`` apart
    (batch ``base_seed=0`` replication 1 is batch ``base_seed=1000``
    replication 0).

    ``"spawn"`` derives seeds through
    :meth:`numpy.random.SeedSequence.spawn`: each replication gets an
    independent child stream whose first 64-bit word becomes the
    simulation seed, making collisions across replications *and* across
    nearby base seeds cryptographically unlikely.
    """
    if replications < 1:
        raise SimulationError(
            f"replications must be >= 1, got {replications}"
        )
    if scheme == "legacy":
        return [base_seed + 1000 * r for r in range(replications)]
    if scheme == "spawn":
        children = np.random.SeedSequence(base_seed).spawn(replications)
        return [
            int(child.generate_state(1, np.uint64)[0]) for child in children
        ]
    raise SimulationError(
        f"unknown seed scheme {scheme!r}; choose from {SEED_SCHEMES}"
    )


def _simulate_job(
    job: Tuple[Topology, Dict[str, int], float, int, dict]
) -> SimulationResult:
    """Pool worker: one independent simulation (pure in its arguments)."""
    topology, capacities, duration, seed, kwargs = job
    return simulate(
        topology, capacities, duration=duration, seed=seed, **kwargs
    )


def _simulate_block_job(
    job: Tuple[Topology, Dict[str, int], float, List[int], dict]
) -> List[SimulationResult]:
    """Pool worker: one mega-batch block (pure in its arguments)."""
    topology, capacities, duration, seeds, kwargs = job
    return simulate_block(
        topology, capacities, duration=duration, seeds=seeds, **kwargs
    )


#: Replications per mega-batch block on a distributed executor: small
#: enough that a fleet with more workers than blocks still load-balances
#: through work stealing, large enough to amortise one kernel per block.
MEGABATCH_DIST_BLOCK = 8


def replicate(
    topology: Topology,
    capacities: Dict[str, int],
    replications: int = 10,
    duration: float = 10_000.0,
    base_seed: int = 0,
    jobs: int = 1,
    seed_scheme: str = "legacy",
    executor=None,
    on_result=None,
    **kwargs,
) -> ReplicationSummary:
    """Run ``replications`` independent simulations (the paper's 10 iterations).

    ``jobs`` fans the independent-seed runs over a process pool via
    :mod:`repro.exec.pool` — or over a distributed fleet when
    ``executor`` (e.g. :class:`repro.dist.DistExecutor`) is given;
    seeds are derived up front and results are merged in replication
    order, so any ``jobs``/executor choice produces a bitwise-identical
    :class:`ReplicationSummary`.  ``on_result(index, result)`` fires in
    replication order as runs complete.  ``seed_scheme`` selects how
    per-replication seeds are derived (see :func:`replication_seeds`).
    Remaining keyword arguments — including the simulation ``backend``
    — pass through to :func:`simulate`.
    """
    seeds = replication_seeds(replications, base_seed, seed_scheme)
    if kwargs.get("backend") == "megabatch":
        # Block dispatch: partition the seed list into contiguous
        # blocks — one mega-batch kernel cell per worker — and flatten
        # the per-block result lists back in replication order.  The
        # per-replication streams are independent, so every partition
        # (serial, jobs=N, distributed) merges bitwise-identically.
        sim_kwargs = {k: v for k, v in kwargs.items() if k != "backend"}
        if executor is not None:
            nblocks = -(-replications // MEGABATCH_DIST_BLOCK)
        else:
            nblocks = min(resolve_jobs(jobs), replications)
        spans = partition_blocks(replications, nblocks)
        block_jobs = [
            (topology, capacities, duration, seeds[lo:hi], sim_kwargs)
            for lo, hi in spans
        ]
        block_on_result = None
        if on_result is not None:
            starts = [lo for lo, _ in spans]

            def block_on_result(block_index, block):
                # Explode block results into per-replication progress
                # events; blocks complete in submission order, so the
                # global indices fire in replication order.
                for offset, result in enumerate(block):
                    on_result(starts[block_index] + offset, result)

        blocks = parallel_map(
            _simulate_block_job,
            block_jobs,
            jobs=jobs,
            executor=executor,
            on_result=block_on_result,
        )
        return ReplicationSummary(
            [result for block in blocks for result in block]
        )
    results = parallel_map(
        _simulate_job,
        [(topology, capacities, duration, seed, kwargs) for seed in seeds],
        jobs=jobs,
        executor=executor,
        on_result=on_result,
    )
    return ReplicationSummary(results)
