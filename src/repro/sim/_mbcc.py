"""On-demand C build of the mega-batch kernel (ctypes, no new deps).

The scalar kernel in :mod:`repro.sim._mbkernel` is deliberately written
so a C transliteration is mechanical; this module carries that
transliteration as an embedded source string, compiles it once with
whatever system C compiler is present (``$CC``, else ``cc``/``gcc``/
``clang`` on PATH), caches the shared object under a content hash, and
exposes it through :mod:`ctypes`.  No compiler, a failed build, or
``REPRO_SIM_CC=0`` all degrade silently to ``None`` — the lane then
falls back to the numpy lockstep engine, so the C path is a pure
speedup, never a dependency.

Bitwise contract: the kernel is compiled with ``-ffp-contract=off`` so
no multiply-add is fused, and every float expression mirrors the
Python kernel's operation order on IEEE doubles — x86-64 SSE2 double
arithmetic then reproduces numpy float64 results bit for bit.  The
engine cross-equality tests in ``tests/test_megabatch.py`` hold the
compiled kernel to that standard against the interpreted one.

All state crosses the boundary as one :class:`MBState` struct of
dimensions and array pointers, built once per lane; per-invocation
calls pass only the struct pointer and the window end time, keeping
the hot path allocation-free.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from typing import Optional

_I64 = ctypes.c_longlong
_F64 = ctypes.c_double
_PI64 = ctypes.POINTER(_I64)
_PF64 = ctypes.POINTER(_F64)


class MBState(ctypes.Structure):
    """Mirror of the C ``mb_state`` struct — keep field order in sync."""

    _fields_ = [
        ("R", _I64),
        ("S", _I64),
        ("B", _I64),
        ("G", _I64),
        ("P", _I64),
        ("W", _I64),
        ("D", _I64),
        ("L", _I64),
        ("H", _I64),
        ("timeout", _F64),
        ("cap", _PI64),
        ("slot_off", _PI64),
        ("ring_bus", _PI64),
        ("cl_off", _PI64),
        ("arb_kind", _PI64),
        ("flow_src", _PI64),
        ("flow_last", _PI64),
        ("flow_ring", _PI64),
        ("flow_scale", _PF64),
        ("first_bus", _PI64),
        ("ev_time", _PF64),
        ("ev_seq", _PI64),
        ("next_id", _PI64),
        ("head", _PI64),
        ("cnt", _PI64),
        ("busy", _PI64),
        ("granted", _PI64),
        ("rr_last", _PI64),
        ("sflow", _PI64),
        ("shop", _PI64),
        ("screa", _PF64),
        ("senq", _PF64),
        ("sscale", _PF64),
        ("svc", _PF64),
        ("svc_idx", _PI64),
        ("gaps", _PF64),
        ("gap_idx", _PI64),
        ("gap_len", _PI64),
        ("offered", _PI64),
        ("lost", _PI64),
        ("timed_out", _PI64),
        ("delivered", _PI64),
        ("wait_sum", _PF64),
        ("wait_cnt", _PI64),
        ("e2e_sum", _PF64),
        ("paused", _PI64),
        ("T", _I64),
    ]


_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Transliteration of repro/sim/_mbkernel.py:advance.  Field order must
 * match the ctypes MBState mirror.  All 2-D/3-D arrays are flat with
 * C-contiguous strides taken from the dimensions below. */

typedef struct {
    int64_t R, S, B, G, P, W, D, L, H;
    double timeout;
    const int64_t *cap, *slot_off, *ring_bus, *cl_off, *arb_kind;
    const int64_t *flow_src, *flow_last, *flow_ring;
    const double *flow_scale;
    const int64_t *first_bus;
    double *ev_time; int64_t *ev_seq; int64_t *next_id;
    int64_t *head, *cnt, *busy, *granted, *rr_last;
    int64_t *sflow, *shop; double *screa, *senq, *sscale;
    const double *svc; int64_t *svc_idx;
    const double *gaps; int64_t *gap_idx; const int64_t *gap_len;
    int64_t *offered, *lost, *timed_out, *delivered;
    double *wait_sum; int64_t *wait_cnt; double *e2e_sum;
    int64_t *paused;
    int64_t T;
} mb_state;

#define SEQ_SENTINEL ((int64_t)1 << 62)

static void grant_(mb_state *st, int64_t r, int64_t b, double now)
{
    if (st->busy[r * st->B + b] != 0)
        return;
    int64_t kind = st->arb_kind[b];
    int64_t lo = st->cl_off[b];
    int64_t ncl = st->cl_off[b + 1] - lo;
    int64_t *cnt = st->cnt + r * st->G;
    for (;;) {
        int64_t i = -1;
        if (kind == 2) {            /* longest queue */
            int64_t best = 0;
            for (int64_t j = 0; j < ncl; j++) {
                int64_t c = cnt[lo + j];
                if (c > best) { i = j; best = c; }
            }
        } else if (kind == 0) {     /* fixed priority */
            for (int64_t j = 0; j < ncl; j++) {
                if (cnt[lo + j] != 0) { i = j; break; }
            }
        } else {                    /* round robin */
            int64_t j = st->rr_last[r * st->B + b];
            for (int64_t o = 0; o < ncl; o++) {
                j += 1;
                if (j >= ncl) j -= ncl;
                if (cnt[lo + j] != 0) {
                    st->rr_last[r * st->B + b] = j;
                    i = j;
                    break;
                }
            }
        }
        if (i < 0)
            return;
        int64_t g = lo + i;
        int64_t h = st->head[r * st->G + g];
        int64_t si = st->slot_off[g] + h;
        double enq = st->senq[r * st->T + si];
        if (st->timeout >= 0.0 && now - enq > st->timeout) {
            int64_t f = st->sflow[r * st->T + si];
            int64_t nh = h + 1;
            if (nh == st->cap[g]) nh = 0;
            st->head[r * st->G + g] = nh;
            cnt[g] -= 1;
            int64_t src = st->flow_src[f];
            st->timed_out[r * st->P + src] += 1;
            st->lost[r * st->P + src] += 1;
            continue;
        }
        st->wait_sum[r] += now - enq;
        st->wait_cnt[r] += 1;
        st->busy[r * st->B + b] = 1;
        st->granted[r * st->B + b] = g;
        int64_t sv = st->svc_idx[r * st->B + b];
        double duration =
            st->svc[(r * st->B + b) * st->D + sv] * st->sscale[r * st->T + si];
        st->svc_idx[r * st->B + b] = sv + 1;
        st->ev_time[r * st->W + st->S + b] = now + duration;
        st->ev_seq[r * st->W + st->S + b] = st->next_id[r];
        st->next_id[r] += 1;
        return;
    }
}

int64_t mb_advance(mb_state *st, double end_time)
{
    const int64_t R = st->R, S = st->S, W = st->W, D = st->D;
    int64_t npaused = 0;
    for (int64_t r = 0; r < R; r++) {
        for (;;) {
            double bt = INFINITY;
            int64_t bs = SEQ_SENTINEL;
            int64_t bj = -1;
            const double *evt = st->ev_time + r * W;
            const int64_t *evs = st->ev_seq + r * W;
            for (int64_t j = 0; j < W; j++) {
                double t = evt[j];
                if (t < bt || (t == bt && evs[j] < bs)) {
                    bt = t; bs = evs[j]; bj = j;
                }
            }
            if (bj < 0 || bt > end_time)
                break;
            if (bj < S) {
                /* arrival of source bj */
                int64_t s = bj;
                if (st->gap_idx[r * S + s] >= st->gap_len[r * S + s]) {
                    st->paused[r] = 1; npaused += 1; break;
                }
                int64_t ab = st->first_bus[s];
                if (st->svc_idx[r * st->B + ab] >= D) {
                    st->paused[r] = 1; npaused += 1; break;
                }
                double now = bt;
                int64_t src = st->flow_src[s];
                st->offered[r * st->P + src] += 1;
                int64_t g = st->flow_ring[s * st->H];
                int64_t n = st->cnt[r * st->G + g];
                if (n == st->cap[g]) {
                    st->lost[r * st->P + src] += 1;
                } else {
                    int64_t pos = st->head[r * st->G + g] + n;
                    int64_t c = st->cap[g];
                    if (pos >= c) pos -= c;
                    int64_t si = st->slot_off[g] + pos;
                    st->sflow[r * st->T + si] = s;
                    st->shop[r * st->T + si] = 0;
                    st->screa[r * st->T + si] = now;
                    st->senq[r * st->T + si] = now;
                    st->sscale[r * st->T + si] = st->flow_scale[s * st->H];
                    st->cnt[r * st->G + g] = n + 1;
                    if (st->busy[r * st->B + ab] == 0)
                        grant_(st, r, ab, now);
                }
                int64_t gi = st->gap_idx[r * S + s];
                st->ev_time[r * W + s] =
                    now + st->gaps[(r * S + s) * st->L + gi];
                st->ev_seq[r * W + s] = st->next_id[r];
                st->next_id[r] += 1;
                st->gap_idx[r * S + s] = gi + 1;
            } else {
                /* completion on bus bj - S */
                int64_t b = bj - S;
                if (st->svc_idx[r * st->B + b] >= D) {
                    st->paused[r] = 1; npaused += 1; break;
                }
                int64_t g = st->granted[r * st->B + b];
                int64_t h = st->head[r * st->G + g];
                int64_t si = st->slot_off[g] + h;
                int64_t f = st->sflow[r * st->T + si];
                int64_t hp = st->shop[r * st->T + si];
                if (hp != st->flow_last[f]) {
                    int64_t b2 =
                        st->ring_bus[st->flow_ring[f * st->H + hp + 1]];
                    if (st->svc_idx[r * st->B + b2] >= D) {
                        st->paused[r] = 1; npaused += 1; break;
                    }
                }
                double now = bt;
                double created = st->screa[r * st->T + si];
                int64_t nh = h + 1;
                if (nh == st->cap[g]) nh = 0;
                st->head[r * st->G + g] = nh;
                st->cnt[r * st->G + g] -= 1;
                st->busy[r * st->B + b] = 0;
                st->ev_time[r * W + S + b] = INFINITY;
                st->ev_seq[r * W + S + b] = SEQ_SENTINEL;
                if (hp == st->flow_last[f]) {
                    st->delivered[r * st->P + st->flow_src[f]] += 1;
                    st->e2e_sum[r] += now - created;
                } else {
                    hp += 1;
                    int64_t g2 = st->flow_ring[f * st->H + hp];
                    int64_t n2 = st->cnt[r * st->G + g2];
                    if (n2 == st->cap[g2]) {
                        st->lost[r * st->P + st->flow_src[f]] += 1;
                    } else {
                        int64_t pos = st->head[r * st->G + g2] + n2;
                        int64_t c2 = st->cap[g2];
                        if (pos >= c2) pos -= c2;
                        int64_t s2 = st->slot_off[g2] + pos;
                        st->sflow[r * st->T + s2] = f;
                        st->shop[r * st->T + s2] = hp;
                        st->screa[r * st->T + s2] = created;
                        st->senq[r * st->T + s2] = now;
                        st->sscale[r * st->T + s2] =
                            st->flow_scale[f * st->H + hp];
                        st->cnt[r * st->G + g2] = n2 + 1;
                        int64_t bb2 = st->ring_bus[g2];
                        if (st->busy[r * st->B + bb2] == 0)
                            grant_(st, r, bb2, now);
                    }
                }
                grant_(st, r, b, now);
            }
        }
    }
    return npaused;
}
"""

#: Flags chosen for speed *and* float fidelity: -ffp-contract=off
#: forbids fused multiply-add so C doubles follow the exact IEEE
#: operation sequence of the Python kernel.
_CFLAGS = ["-O2", "-fPIC", "-shared", "-ffp-contract=off"]

_lock = threading.Lock()
_cached: Optional[ctypes.CDLL] = None
_tried = False
_warned = False


def _compiler() -> Optional[str]:
    cc = os.environ.get("CC")
    if cc and shutil.which(cc):
        return cc
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> str:
    override = os.environ.get("REPRO_SIM_CC_DIR")
    if override:
        return override
    return os.path.join(tempfile.gettempdir(), "repro-mbkernel")


def load_kernel() -> Optional[ctypes.CDLL]:
    """The compiled kernel library, building it on first use.

    Returns ``None`` when the C path is unavailable: no compiler on
    PATH, the build failed (warned once), or ``REPRO_SIM_CC=0``.
    The shared object is cached under a hash of source + compiler +
    flags, so rebuilds happen only when the kernel changes.
    """
    global _cached, _tried, _warned
    if os.environ.get("REPRO_SIM_CC", "1") == "0":
        return None
    with _lock:
        if _tried:
            return _cached
        _tried = True
        cc = _compiler()
        if cc is None:
            return None
        digest = hashlib.sha256(
            "\x00".join([_SOURCE, cc] + _CFLAGS).encode()
        ).hexdigest()[:16]
        cache_dir = _cache_dir()
        sofile = os.path.join(cache_dir, f"mbkernel-{digest}.so")
        try:
            if not os.path.exists(sofile):
                os.makedirs(cache_dir, exist_ok=True)
                src = os.path.join(cache_dir, f"mbkernel-{digest}.c")
                with open(src, "w") as fh:
                    fh.write(_SOURCE)
                tmp = sofile + f".tmp{os.getpid()}"
                subprocess.run(
                    [cc, *_CFLAGS, "-o", tmp, src],
                    check=True,
                    capture_output=True,
                    timeout=120,
                )
                os.replace(tmp, sofile)  # atomic: racing builds agree
            lib = ctypes.CDLL(sofile)
            lib.mb_advance.argtypes = [ctypes.POINTER(MBState), _F64]
            lib.mb_advance.restype = _I64
            _cached = lib
        except Exception as exc:  # degrade to the numpy engine
            if not _warned:
                _warned = True
                warnings.warn(
                    f"mega-batch C kernel unavailable ({exc}); "
                    "falling back to the numpy engine",
                    RuntimeWarning,
                    stacklevel=2,
                )
            _cached = None
        return _cached
