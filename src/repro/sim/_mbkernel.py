"""The mega-batch time-step kernel, in numba-compatible scalar form.

:func:`advance` drains every replication of one fleet cell through its
event calendar up to ``end_time``, operating exclusively on the flat
arrays laid out by :class:`repro.sim.megabatch.MegaBatchLane`.  It is a
line-for-line transliteration of the :class:`repro.sim.batched`
drain loop with a leading replication axis ``R``:

* the event calendar is a fixed ``(R, S + B)`` array — one pending
  arrival per source (columns ``0..S-1``) and at most one pending
  completion per bus (columns ``S..S+B-1``, ``+inf`` when idle) — so
  "pop the heap" becomes a linear ``(time, seq)`` scan;
* sequence numbers are assigned at exactly the batched lane's logical
  scheduling points, so same-timestamp ties dispatch identically;
* every float expression (``now + gap``, ``variate * scale``,
  ``now - enqueued`` accumulations) matches the batched lane's
  operation order, keeping fixed-seed metrics bitwise identical.

The function body is restricted to scalar arithmetic and array
subscripts so the *same source* runs three ways: interpreted (the
always-available correctness oracle), under ``numba.njit`` when
``REPRO_SIM_JIT=1`` and numba is importable, and as the reference for
the C transliteration in :mod:`repro.sim._mbcc` (kept in sync by the
engine cross-equality tests).

Refill protocol — the kernel never draws randomness.  Before
dispatching an event it checks that every pre-drawn buffer the dispatch
could consume (the source's gap row; the service row of each bus a
grant might start on) still has a value.  If not, it sets
``paused[r]`` and moves to the next replication; the Python wrapper
refills exactly the exhausted rows (index == fill length, so no stream
tail is ever discarded) and re-enters.  The conservative pre-check can
pause on a draw the grant would not have made — harmless, because a
refill only moves draws earlier in wall time, never changes their
order within a stream.
"""

from __future__ import annotations

import numpy as np

#: Sequence sentinel for idle completion slots: larger than any real
#: event id, so an idle slot can never win a ``(time, seq)`` tie.
SEQ_SENTINEL = np.int64(2**62)


def advance(
    end_time,
    timeout,          # float; < 0 means "no timeout policy"
    cap,              # (G,)   ring capacities
    slot_off,         # (G+1,) ring -> first column in the slot arrays
    ring_bus,         # (G,)   ring -> owning bus
    cl_off,           # (B+1,) bus  -> first ring id (rings contiguous)
    arb_kind,         # (B,)   ARB_FIXED / ARB_ROUND_ROBIN / ARB_LONGEST
    flow_src,         # (S,)   flow -> source processor index
    flow_last,        # (S,)   flow -> last hop index
    flow_ring,        # (S,H)  flow x hop -> ring id (-1 padded)
    flow_scale,       # (S,H)  flow x hop -> 1/service_rate
    first_bus,        # (S,)   flow -> bus of its first ring
    ev_time,          # (R,W)  event calendar times, W = S + B
    ev_seq,           # (R,W)  event calendar sequence numbers
    next_id,          # (R,)   next sequence number
    head,             # (R,G)  ring head positions
    cnt,              # (R,G)  ring occupancies (the arbitration counts)
    busy,             # (R,B)  bus busy flags (0/1)
    granted,          # (R,B)  ring granted to the in-flight transaction
    rr_last,          # (R,B)  round-robin cursors
    sflow,            # (R,T)  slot: flow id
    shop,             # (R,T)  slot: hop index
    screa,            # (R,T)  slot: creation time
    senq,             # (R,T)  slot: enqueue time
    sscale,           # (R,T)  slot: cached 1/service_rate
    svc,              # (R,B,D) pre-drawn standard-exponential variates
    svc_idx,          # (R,B)  next unconsumed service variate
    gaps,             # (R,S,L) pre-drawn interarrival gaps
    gap_idx,          # (R,S)  next unconsumed gap
    gap_len,          # (R,S)  filled length of each gap row
    offered,          # (R,P)  per-processor counters...
    lost,
    timed_out,
    delivered,
    wait_sum,         # (R,)   waiting-time accumulator
    wait_cnt,         # (R,)
    e2e_sum,          # (R,)   end-to-end latency accumulator
    paused,           # (R,)   out: 1 where a refill is needed
):
    """Advance every replication to ``end_time`` or its next refill.

    Returns the number of replications that paused for a refill; zero
    means every replication's calendar is drained past ``end_time``.
    """
    R, W = ev_time.shape
    S = gap_idx.shape[1]
    D = svc.shape[2]
    INF = np.inf

    def _grant(r, b, now):
        # BatchedSystem's grant() with an explicit replication index:
        # arbitrate on occupancy counts, timeout-drop stale heads, then
        # start one transaction with a pre-drawn service variate.
        if busy[r, b] != 0:
            return
        kind = arb_kind[b]
        lo = cl_off[b]
        ncl = cl_off[b + 1] - lo
        while True:
            i = -1
            if kind == 2:  # longest queue (ties to lowest index)
                best = 0
                for j in range(ncl):
                    c = cnt[r, lo + j]
                    if c > best:
                        i = j
                        best = c
            elif kind == 0:  # fixed priority
                for j in range(ncl):
                    if cnt[r, lo + j] != 0:
                        i = j
                        break
            else:  # round robin
                j = rr_last[r, b]
                for _off in range(ncl):
                    j += 1
                    if j >= ncl:
                        j -= ncl
                    if cnt[r, lo + j] != 0:
                        rr_last[r, b] = j
                        i = j
                        break
            if i < 0:
                return
            g = lo + i
            h = head[r, g]
            si = slot_off[g] + h
            enq = senq[r, si]
            if timeout >= 0.0 and now - enq > timeout:
                f = sflow[r, si]
                nh = h + 1
                if nh == cap[g]:
                    nh = 0
                head[r, g] = nh
                cnt[r, g] -= 1
                src = flow_src[f]
                timed_out[r, src] += 1
                lost[r, src] += 1
                continue  # pick another; the bus stays free now
            wait_sum[r] += now - enq
            wait_cnt[r] += 1
            busy[r, b] = 1
            granted[r, b] = g
            sv = svc_idx[r, b]
            duration = svc[r, b, sv] * sscale[r, si]
            svc_idx[r, b] = sv + 1
            ev_time[r, S + b] = now + duration
            ev_seq[r, S + b] = next_id[r]
            next_id[r] += 1
            return

    npaused = 0
    for r in range(R):
        while True:
            # ---- pop-min over the fixed calendar: (time, seq) order
            bt = INF
            bs = SEQ_SENTINEL
            bj = -1
            for j in range(W):
                t = ev_time[r, j]
                if t < bt or (t == bt and ev_seq[r, j] < bs):
                    bt = t
                    bs = ev_seq[r, j]
                    bj = j
            if bj < 0 or bt > end_time:
                break  # this replication's window is drained
            if bj < S:
                # ---- arrival of source bj --------------------------
                s = bj
                if gap_idx[r, s] >= gap_len[r, s]:
                    paused[r] = 1
                    npaused += 1
                    break
                ab = first_bus[s]
                if svc_idx[r, ab] >= D:
                    paused[r] = 1
                    npaused += 1
                    break
                now = bt
                src = flow_src[s]
                offered[r, src] += 1
                g = flow_ring[s, 0]
                n = cnt[r, g]
                if n == cap[g]:
                    lost[r, src] += 1
                else:
                    pos = head[r, g] + n
                    c = cap[g]
                    if pos >= c:
                        pos -= c
                    si = slot_off[g] + pos
                    sflow[r, si] = s
                    shop[r, si] = 0
                    screa[r, si] = now
                    senq[r, si] = now
                    sscale[r, si] = flow_scale[s, 0]
                    cnt[r, g] = n + 1
                    if busy[r, ab] == 0:
                        _grant(r, ab, now)
                # Schedule the next arrival (the batched lane assigns
                # the next-arrival id after any grant it caused).
                gi = gap_idx[r, s]
                ev_time[r, s] = now + gaps[r, s, gi]
                ev_seq[r, s] = next_id[r]
                next_id[r] += 1
                gap_idx[r, s] = gi + 1
            else:
                # ---- completion on bus bj - S ----------------------
                b = bj - S
                if svc_idx[r, b] >= D:
                    paused[r] = 1
                    npaused += 1
                    break
                g = granted[r, b]
                h = head[r, g]
                si = slot_off[g] + h
                f = sflow[r, si]
                hp = shop[r, si]
                if hp != flow_last[f]:
                    b2 = ring_bus[flow_ring[f, hp + 1]]
                    if svc_idx[r, b2] >= D:
                        paused[r] = 1
                        npaused += 1
                        break
                now = bt
                created = screa[r, si]
                nh = h + 1
                if nh == cap[g]:
                    nh = 0
                head[r, g] = nh
                cnt[r, g] -= 1
                busy[r, b] = 0
                ev_time[r, S + b] = INF
                ev_seq[r, S + b] = SEQ_SENTINEL
                if hp == flow_last[f]:
                    delivered[r, flow_src[f]] += 1
                    e2e_sum[r] += now - created
                else:
                    hp += 1
                    g2 = flow_ring[f, hp]
                    n2 = cnt[r, g2]
                    if n2 == cap[g2]:
                        lost[r, flow_src[f]] += 1
                    else:
                        pos = head[r, g2] + n2
                        c2 = cap[g2]
                        if pos >= c2:
                            pos -= c2
                        s2 = slot_off[g2] + pos
                        sflow[r, s2] = f
                        shop[r, s2] = hp
                        screa[r, s2] = created
                        senq[r, s2] = now
                        sscale[r, s2] = flow_scale[f, hp]
                        cnt[r, g2] = n2 + 1
                        b2 = ring_bus[g2]
                        if busy[r, b2] == 0:
                            _grant(r, b2, now)
                _grant(r, b, now)
    return npaused
