"""Packets (bus requests) and their multi-hop itineraries."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True, slots=True)
class Hop:
    """One leg of a packet's journey.

    Attributes
    ----------
    cluster_index:
        Index of the bus cluster whose arbiter serves this leg.
    client:
        Name of the buffer the packet waits in (a processor name for the
        first hop, a bridge-entry buffer name afterwards).
    service_rate:
        Exponential service rate of this leg's bus transaction.
    """

    cluster_index: int
    client: str
    service_rate: float


@dataclass(slots=True)
class Packet:
    """A single request travelling through the communication sub-system."""

    packet_id: int
    flow: str
    source: str
    destination: str
    hops: Tuple[Hop, ...]
    created_at: float
    hop_index: int = 0
    enqueued_at: float = 0.0

    @property
    def current_hop(self) -> Hop:
        """The hop the packet is currently waiting on."""
        return self.hops[self.hop_index]

    @property
    def is_last_hop(self) -> bool:
        """True when serving the current hop completes delivery."""
        return self.hop_index == len(self.hops) - 1

    def advance(self) -> None:
        """Move to the next hop (after a non-final service completes)."""
        self.hop_index += 1
