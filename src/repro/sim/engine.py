"""Event-heap simulation engine.

A minimal, dependency-free discrete-event core: events are ``(time,
sequence, callback)`` triples on a binary heap; ties in time break by
insertion order so runs are fully deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[[], None]


class Simulator:
    """The simulation clock and event queue.

    Components schedule callbacks with :meth:`schedule` (relative delay)
    or :meth:`schedule_at` (absolute time); :meth:`run_until` advances the
    clock, executing events in order.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callback]] = []
        self._sequence = itertools.count()
        self._cancelled: set = set()

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    def schedule(self, delay: float, callback: Callback) -> int:
        """Schedule ``callback`` to run ``delay`` time units from now.

        Returns an event id usable with :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callback) -> int:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self._now}"
            )
        event_id = next(self._sequence)
        heapq.heappush(self._queue, (when, event_id, callback))
        return event_id

    def cancel(self, event_id: int) -> None:
        """Cancel a scheduled event (lazy removal)."""
        self._cancelled.add(event_id)

    def run_until(self, end_time: float) -> None:
        """Execute events in order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are executed.  The clock
        finishes at ``end_time`` even if the queue drains early.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before now {self._now}"
            )
        while self._queue and self._queue[0][0] <= end_time:
            when, event_id, callback = heapq.heappop(self._queue)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self._now = when
            callback()
        self._now = end_time

    def step(self) -> bool:
        """Execute exactly one event; returns False when queue is empty."""
        while self._queue:
            when, event_id, callback = heapq.heappop(self._queue)
            if event_id in self._cancelled:
                self._cancelled.discard(event_id)
                continue
            self._now = when
            callback()
            return True
        return False
