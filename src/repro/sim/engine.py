"""Event-heap simulation engine.

A minimal, dependency-free discrete-event core: events are ``[time,
sequence, callback, args]`` entries on a binary heap; ties in time break
by insertion order so runs are fully deterministic for a fixed seed.

Hot-path notes: entries are mutable lists so :meth:`Simulator.cancel`
tombstones in place (no separate cancelled-id set to leak), callbacks
take positional ``args`` so schedule sites need no closure allocation,
and a live-entry map keeps :attr:`Simulator.pending_events` exact.

Two event cores live here:

:class:`Simulator`
    The reference engine: one Python callback per heap pop.  Every
    component of :mod:`repro.sim.system` runs on it.

:class:`BatchedSimulator`
    The event core of the batched lane (:mod:`repro.sim.batched`).
    Events carry an opaque integer *code* instead of a callback, and
    :meth:`BatchedSimulator.pop_batch` drains **all events sharing the
    minimal timestamp in one step**, handing them back as one grouped
    code array in schedule order.  The caller dispatches the group over
    array state instead of the engine dispatching closures one by one.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError

Callback = Callable[..., None]


class Simulator:
    """The simulation clock and event queue.

    Components schedule callbacks with :meth:`schedule` (relative delay)
    or :meth:`schedule_at` (absolute time); :meth:`run_until` advances the
    clock, executing events in order.
    """

    __slots__ = ("_now", "_queue", "_next_id", "_live")

    def __init__(self) -> None:
        self._now = 0.0
        # Heap entries: [when, event_id, callback, args].  The unique
        # event id breaks ties, so comparisons never reach the callback.
        self._queue: List[list] = []
        self._next_id = 0
        self._live: Dict[int, list] = {}

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of outstanding (scheduled, not executed, not
        cancelled) events — exact, excluding tombstoned entries."""
        return len(self._live)

    def schedule(self, delay: float, callback: Callback, *args) -> int:
        """Schedule ``callback(*args)`` to run ``delay`` time units from
        now.

        Returns an event id usable with :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: delay={delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, when: float, callback: Callback, *args) -> int:
        """Schedule ``callback(*args)`` at absolute time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self._now}"
            )
        event_id = self._next_id
        self._next_id = event_id + 1
        entry = [when, event_id, callback, args]
        self._live[event_id] = entry
        heapq.heappush(self._queue, entry)
        return event_id

    def cancel(self, event_id: int) -> None:
        """Cancel an outstanding event.

        Tombstones the heap entry in place; cancelling an id that
        already executed, was already cancelled, or was never scheduled
        is a harmless no-op (nothing is retained for it).
        """
        entry = self._live.pop(event_id, None)
        if entry is not None:
            entry[2] = None
            entry[3] = ()

    def run_until(self, end_time: float) -> None:
        """Execute events in order until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are executed.  The clock
        finishes at ``end_time`` even if the queue drains early.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before now {self._now}"
            )
        queue = self._queue
        live = self._live
        pop = heapq.heappop
        while queue and queue[0][0] <= end_time:
            when, event_id, callback, args = pop(queue)
            if callback is None:
                continue  # tombstoned by cancel()
            del live[event_id]
            self._now = when
            callback(*args)
        self._now = end_time

    def step(self) -> bool:
        """Execute exactly one event; returns False when queue is empty."""
        queue = self._queue
        while queue:
            when, event_id, callback, args = heapq.heappop(queue)
            if callback is None:
                continue
            del self._live[event_id]
            self._now = when
            callback(*args)
            return True
        return False


class BatchedSimulator:
    """Same-timestamp draining event core for the array lane.

    Events are ``(when, sequence, code)`` triples on a binary heap;
    ``code`` is an opaque non-negative integer the caller uses to look
    up what the event means (the batched lane encodes "arrival of
    source *s*" / "completion on bus *b*" into it).  Sequence numbers
    are assigned in :meth:`push` order, so the tie-breaking contract is
    identical to :class:`Simulator`: events at equal timestamps run in
    scheduling order.

    :meth:`pop_batch` is the drain mode: it removes **every** event
    sharing the earliest timestamp and returns them as one grouped code
    list (in sequence order) instead of dispatching one callback per
    pop.  With continuous interarrival and service distributions the
    group is almost always a single event; exact ties — simultaneous
    trace replays, degenerate zero gaps — come out as one batch, which
    the caller can dispatch as a single array operation.

    There is no cancellation: the batched lane's pending set (one
    arrival per source, at most one completion per bus) never retracts
    an event, so the heap needs no tombstones or live-entry map.
    """

    __slots__ = ("_now", "_queue", "_next_id")

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, int]] = []
        self._next_id = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of outstanding events."""
        return len(self._queue)

    def push(self, when: float, code: int) -> int:
        """Schedule event ``code`` at absolute time ``when``.

        Returns the sequence number (the deterministic tie-break key),
        mirroring the event ids :meth:`Simulator.schedule_at` hands out.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {when} < now {self._now}"
            )
        event_id = self._next_id
        self._next_id = event_id + 1
        heapq.heappush(self._queue, (when, event_id, code))
        return event_id

    def pop_batch(self, end_time: float) -> Optional[Tuple[float, List[int]]]:
        """Drain all events at the earliest timestamp ``<= end_time``.

        Returns ``(when, codes)`` with ``codes`` grouped in schedule
        order, advancing the clock to ``when`` — or None when the queue
        is empty or the next event lies beyond ``end_time`` (the clock
        is then left where it was; callers finish with
        :meth:`advance_to`).
        """
        queue = self._queue
        if not queue or queue[0][0] > end_time:
            return None
        pop = heapq.heappop
        when, _seq, code = pop(queue)
        codes = [code]
        while queue and queue[0][0] == when:
            codes.append(pop(queue)[2])
        self._now = when
        return when, codes

    def advance_to(self, end_time: float) -> None:
        """Move the clock to ``end_time`` (no events may remain before it)."""
        if end_time < self._now:
            raise SimulationError(
                f"end time {end_time} is before now {self._now}"
            )
        if self._queue and self._queue[0][0] <= end_time:
            raise SimulationError(
                "cannot advance past pending events; drain with pop_batch"
            )
        self._now = end_time
