"""Assembling a runnable simulator from a topology and an allocation.

:class:`CommunicationSystem` wires together flow sources, finite buffers,
cluster buses and the monitor.  Buffer capacities come from an allocation
mapping ``client name -> slots``; client names are processor names and
canonical bridge-entry names (:func:`repro.sim.bridge.client_name_for_bridge`),
the same vocabulary :mod:`repro.core.splitting` uses — so the CTMDP sizing
output plugs straight in.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.arch.topology import Topology
from repro.errors import SimulationError
from repro.sim.arbiter import Arbiter, make_arbiter
from repro.sim.bridge import (
    bridge_entry_bus,
    build_hops,
    client_name_for_bridge,
)
from repro.sim.buffer import FiniteBuffer
from repro.sim.bus import ClusterBus
from repro.sim.engine import Simulator
from repro.sim.monitor import Monitor
from repro.sim.packet import Packet
from repro.sim.processor import FlowSource


def required_clients(topology: Topology) -> List[str]:
    """All buffer client names a topology needs, in deterministic order.

    Processors (sorted) first, then every bridge direction that at least
    one flow actually crosses plus — for sizing headroom — every bridge
    direction at all.
    """
    names = sorted(topology.processors)
    bridge_names = []
    for bridge in sorted(topology.bridges.values(), key=lambda b: b.name):
        bridge_names.append(client_name_for_bridge(bridge.name, bridge.bus_a))
        bridge_names.append(client_name_for_bridge(bridge.name, bridge.bus_b))
    return names + bridge_names


class CommunicationSystem:
    """A fully wired simulator instance.

    Parameters
    ----------
    topology:
        Validated architecture description.
    capacities:
        ``client name -> buffer slots``.  Every processor must be present;
        bridge-entry buffers missing from the map default to zero slots
        (no buffer inserted => all crossing traffic is lost), which makes
        forgetting bridge insertion loudly visible in results.
    arbiter_kind:
        Name understood by :func:`repro.sim.arbiter.make_arbiter`; each
        cluster gets its own instance.
    arbiter_weights:
        Only for ``weighted_random``: client-name weights.
    timeout_threshold:
        Enables the paper's timeout-based dropping policy on every
        cluster.
    seed:
        Master seed; flow sources and cluster buses draw independent
        substreams.
    """

    def __init__(
        self,
        topology: Topology,
        capacities: Dict[str, int],
        arbiter_kind: str = "longest_queue",
        arbiter_weights: Optional[Dict[str, float]] = None,
        timeout_threshold: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        topology.validate()
        self.topology = topology
        self.simulator = Simulator()
        self.monitor = Monitor()
        self.clusters = topology.bus_clusters()
        cluster_index = {c: i for i, c in enumerate(self.clusters)}

        missing = [
            p for p in topology.processors if p not in capacities
        ]
        if missing:
            raise SimulationError(
                f"allocation missing processor buffers: {sorted(missing)}"
            )

        seed_seq = np.random.SeedSequence(seed)
        children = seed_seq.spawn(len(self.clusters) + len(topology.flows))
        bus_streams = children[: len(self.clusters)]
        flow_streams = children[len(self.clusters):]

        # Build buffers per cluster: processors (sorted), then bridge
        # entries (sorted by canonical name).
        self.buses: List[ClusterBus] = []
        self._buffers: Dict[str, FiniteBuffer] = {}
        for i, cluster in enumerate(self.clusters):
            buffers: List[FiniteBuffer] = []
            for proc in topology.cluster_processors(cluster):
                buf = FiniteBuffer(proc.name, int(capacities[proc.name]))
                buffers.append(buf)
                self._buffers[proc.name] = buf
            entry_names = []
            for bridge in topology.cluster_bridges(cluster):
                if bridge.bus_a in cluster or bridge.bus_b in cluster:
                    try:
                        entry_bus = bridge_entry_bus(bridge, cluster)
                    except Exception:  # pragma: no cover - defensive
                        continue
                    entry_names.append(
                        client_name_for_bridge(bridge.name, entry_bus)
                    )
            for name in sorted(entry_names):
                buf = FiniteBuffer(name, int(capacities.get(name, 0)))
                buffers.append(buf)
                self._buffers[name] = buf
            arbiter = make_arbiter(
                arbiter_kind, weights=arbiter_weights or {}
            ) if arbiter_kind == "weighted_random" else make_arbiter(
                arbiter_kind
            )
            self.buses.append(
                ClusterBus(
                    name=f"cluster{i}",
                    buffers=buffers,
                    arbiter=arbiter,
                    simulator=self.simulator,
                    monitor=self.monitor,
                    rng=np.random.default_rng(bus_streams[i]),
                    on_serviced=self._route_onward,
                    timeout_threshold=timeout_threshold,
                )
            )

        # Flow sources.
        self.sources: List[FlowSource] = []
        for stream, flow_name in zip(flow_streams, sorted(topology.flows)):
            flow = topology.flows[flow_name]
            hops = build_hops(topology, flow_name, cluster_index)
            self.sources.append(
                FlowSource(
                    flow=flow,
                    hops=hops,
                    simulator=self.simulator,
                    rng=np.random.default_rng(stream),
                    deliver=self._inject,
                )
            )

    # ------------------------------------------------------------------

    def _inject(self, packet: Packet) -> None:
        """A fresh packet enters its source buffer."""
        self.monitor.record_offered(packet)
        self.buses[packet.current_hop.cluster_index].enqueue(packet)

    def _route_onward(self, packet: Packet) -> None:
        """A serviced packet either advances a hop or is delivered."""
        if packet.is_last_hop:
            self.monitor.record_delivery(packet, self.simulator.now)
            return
        packet.advance()
        self.buses[packet.current_hop.cluster_index].enqueue(packet)

    # ------------------------------------------------------------------

    def run(self, duration: float) -> Monitor:
        """Start all sources and run for ``duration`` time units."""
        if duration <= 0:
            raise SimulationError(f"duration must be > 0, got {duration}")
        for source in self.sources:
            source.start()
        self.simulator.run_until(duration)
        return self.monitor

    def buffer(self, name: str) -> FiniteBuffer:
        """Access a buffer by client name (stats inspection)."""
        try:
            return self._buffers[name]
        except KeyError:
            raise SimulationError(f"unknown buffer {name!r}") from None
