"""CTMDP models of a shared bus with finite per-client buffers.

A *client* of a bus is anything that owns a buffer feeding that bus: a
processor issuing requests, or a **bridge buffer** inserted by the split
method of :mod:`repro.core.splitting`.  Each client ``i`` has

* a Poisson request rate ``lambda_i`` into its buffer,
* an exponential bus-service rate ``mu_i`` for its requests,
* a buffer capacity ``k_i`` (the quantity the paper optimises),
* a loss weight ``w_i`` ("allowing some losses to be more important than
  the others", Section 3).

Two CTMDP constructions are provided:

:func:`build_joint_bus_ctmdp`
    The exact model.  State = the vector of buffer occupancies; action =
    which non-empty buffer the arbiter serves (preemptive-resume
    arbitration, memoryless thanks to exponential service).  Lost
    arrivals appear as cost rate ``w_j * lambda_j`` accrued while buffer
    ``j`` is full.  State count is ``prod_i (k_i + 1)``, so this is used
    for buses with a handful of clients — e.g. every subsystem of the
    paper's Figure 1.

:func:`build_client_chain_ctmdp`
    The decomposed model used when the joint lattice would explode (the
    17-processor network-processor testbed).  Each client becomes its own
    birth-death CTMDP with actions ``serve``/``idle``; the bus is
    recovered as a *shared linear constraint* in the joint
    :class:`~repro.core.lp.BlockLP`: the total fraction of time clients
    are being served may not exceed one.  This keeps everything linear —
    exactly the property the paper's split is designed to preserve.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.ctmdp import CTMDP
from repro.errors import ModelError

#: Constraint name for expected occupied buffer space.
SPACE = "space"
#: Constraint name for the fraction of bus time a client holds the bus.
BUS_TIME = "bus_time"
#: Action label meaning "the arbiter grants nobody".
IDLE = "idle"


@dataclass(frozen=True)
class BusClient:
    """A buffer-owning client of one bus.

    Parameters
    ----------
    name:
        Unique identifier within the bus (processor or bridge-buffer name).
    arrival_rate:
        Poisson rate of requests entering this client's buffer.
    service_rate:
        Exponential rate at which the bus drains one of this client's
        requests once granted.
    capacity:
        Buffer capacity used when building the CTMDP state space.  During
        sizing this is the *maximum* size the optimiser may assign, not
        the final allocation.
    loss_weight:
        Relative importance of this client's losses in the objective.
    """

    name: str
    arrival_rate: float
    service_rate: float
    capacity: int
    loss_weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("client name must be non-empty")
        if self.arrival_rate < 0:
            raise ModelError(
                f"client {self.name!r}: arrival rate must be >= 0"
            )
        if self.service_rate <= 0:
            raise ModelError(
                f"client {self.name!r}: service rate must be > 0"
            )
        if self.capacity < 1:
            raise ModelError(f"client {self.name!r}: capacity must be >= 1")
        if self.loss_weight < 0:
            raise ModelError(
                f"client {self.name!r}: loss weight must be >= 0"
            )

    def with_capacity(self, capacity: int) -> "BusClient":
        """A copy of this client with a different buffer capacity."""
        return BusClient(
            name=self.name,
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            capacity=capacity,
            loss_weight=self.loss_weight,
        )

    def with_arrival_rate(self, arrival_rate: float) -> "BusClient":
        """A copy of this client with a different arrival rate."""
        return BusClient(
            name=self.name,
            arrival_rate=arrival_rate,
            service_rate=self.service_rate,
            capacity=self.capacity,
            loss_weight=self.loss_weight,
        )


def _check_clients(clients: Sequence[BusClient]) -> List[BusClient]:
    clients = list(clients)
    if not clients:
        raise ModelError("a bus needs at least one client")
    names = [c.name for c in clients]
    if len(set(names)) != len(names):
        raise ModelError(f"duplicate client names in {names}")
    return clients


def joint_state_space_size(clients: Sequence[BusClient]) -> int:
    """Number of states of the joint occupancy lattice."""
    size = 1
    for client in _check_clients(clients):
        size *= client.capacity + 1
    return size


def build_joint_bus_ctmdp(clients: Sequence[BusClient]) -> CTMDP:
    """Exact joint CTMDP of one bus (see module docstring).

    States are occupancy tuples ``(q_1, ..., q_n)``; actions are the names
    of clients with a non-empty buffer (plus :data:`IDLE` when all buffers
    are empty).  The cost rate of every (state, action) pair is the
    weighted loss rate ``sum_{j : q_j = k_j} w_j lambda_j``; constraint
    rates are the total occupied space (:data:`SPACE`) plus one
    ``space:<client>`` rate per client for marginal accounting.
    """
    clients = _check_clients(clients)
    model = CTMDP()
    capacities = [c.capacity for c in clients]
    for occupancy in itertools.product(*(range(k + 1) for k in capacities)):
        state = tuple(occupancy)
        loss_rate = sum(
            c.loss_weight * c.arrival_rate
            for q, c in zip(state, clients)
            if q == c.capacity
        )
        constraint_rates = {SPACE: float(sum(state))}
        for q, c in zip(state, clients):
            constraint_rates[f"{SPACE}:{c.name}"] = float(q)
        serveable = [i for i, q in enumerate(state) if q > 0]
        actions = [clients[i].name for i in serveable] or [IDLE]
        for action in actions:
            transitions: List[Tuple[tuple, float]] = []
            # Arrivals into every non-full buffer.
            for j, c in enumerate(clients):
                if state[j] < c.capacity and c.arrival_rate > 0:
                    target = list(state)
                    target[j] += 1
                    transitions.append((tuple(target), c.arrival_rate))
            # Service completion for the granted client.
            if action != IDLE:
                i = next(
                    idx for idx, c in enumerate(clients) if c.name == action
                )
                target = list(state)
                target[i] -= 1
                transitions.append((tuple(target), clients[i].service_rate))
            model.add_action(
                state,
                action,
                transitions,
                cost_rate=loss_rate,
                constraint_rates=constraint_rates,
            )
    model.validate()
    return model


def build_client_chain_ctmdp(
    client: BusClient, holding_cost_rate: float = 0.0
) -> CTMDP:
    """Decomposed per-client CTMDP with ``serve``/``idle`` actions.

    States are this client's occupancies ``0..k``.  In states with ``q >
    0`` the arbiter chooses between granting the bus (action ``"serve"``,
    enabling the service transition and accruing :data:`BUS_TIME` rate 1)
    and withholding it (action :data:`IDLE`).  The bus capacity itself is
    *not* modelled here — it is re-imposed as the shared BlockLP row
    ``sum_clients E[time serving] <= 1`` by
    :func:`bus_time_coefficients`.

    ``holding_cost_rate`` adds a cost of that rate per occupied slot.  A
    *small positive* value is essential when this model feeds the sizing
    pipeline: without it the LP has degenerate optima that "park" a queue
    at an interior level forever (serving exactly at the arrival rate
    costs nothing and loses nothing), and the resulting occupancy
    marginals are meaningless for buffer sizing.
    """
    if holding_cost_rate < 0:
        raise ModelError(
            f"holding cost rate must be >= 0, got {holding_cost_rate}"
        )
    model = CTMDP()
    k = client.capacity
    for q in range(k + 1):
        loss_rate = client.loss_weight * client.arrival_rate if q == k else 0.0
        loss_rate += holding_cost_rate * q
        constraint_rates = {
            SPACE: float(q),
            f"{SPACE}:{client.name}": float(q),
        }
        arrivals: List[Tuple[int, float]] = []
        if q < k and client.arrival_rate > 0:
            arrivals.append((q + 1, client.arrival_rate))
        # Action: idle (never serve).
        model.add_action(
            q,
            IDLE,
            arrivals,
            cost_rate=loss_rate,
            constraint_rates=constraint_rates,
        )
        # Action: serve (only meaningful when there is work).
        if q > 0:
            transitions = arrivals + [(q - 1, client.service_rate)]
            model.add_action(
                q,
                "serve",
                transitions,
                cost_rate=loss_rate,
                constraint_rates={**constraint_rates, BUS_TIME: 1.0},
            )
    model.validate()
    return model


def bus_time_coefficients(
    model: CTMDP,
) -> Dict[Tuple, float]:
    """Coefficients of one client block in the shared bus-time row.

    Returns ``{(state, action): bus_time_rate}`` restricted to non-zero
    entries, ready for :meth:`repro.core.lp.BlockLP.add_shared_constraint`.
    """
    coeffs: Dict[Tuple, float] = {}
    for s, a in model.state_action_pairs():
        value = model.constraint_rate(BUS_TIME, s, a)
        if value != 0.0:
            coeffs[(s, a)] = value
    return coeffs


def space_coefficients(model: CTMDP) -> Dict[Tuple, float]:
    """Coefficients of one block in a shared buffer-space row."""
    coeffs: Dict[Tuple, float] = {}
    for s, a in model.state_action_pairs():
        value = model.constraint_rate(SPACE, s, a)
        if value != 0.0:
            coeffs[(s, a)] = value
    return coeffs


def joint_client_marginals(
    clients: Sequence[BusClient],
    occupation: Dict[Tuple, float],
) -> Dict[str, np.ndarray]:
    """Per-client occupancy marginals from a *joint* occupation measure.

    Parameters
    ----------
    clients:
        The client list the joint model was built from (defines ordering).
    occupation:
        ``{(state_tuple, action): mass}`` as returned by the LP.

    Returns
    -------
    dict
        ``{client_name: array p, p[q] = P(client occupancy == q)}``.
    """
    clients = _check_clients(clients)
    marginals = {
        c.name: np.zeros(c.capacity + 1) for c in clients
    }
    for (state, _action), mass in occupation.items():
        if mass <= 0:
            continue
        for i, c in enumerate(clients):
            marginals[c.name][state[i]] += mass
    for name, p in marginals.items():
        total = p.sum()
        if total <= 0:
            raise ModelError(
                f"occupation measure has no mass for client {name!r}"
            )
        marginals[name] = p / total
    return marginals


def chain_client_marginal(
    client: BusClient,
    occupation: Dict[Tuple, float],
) -> np.ndarray:
    """Occupancy marginal of one client from its *decomposed* block."""
    p = np.zeros(client.capacity + 1)
    for (state, _action), mass in occupation.items():
        p[state] += max(mass, 0.0)
    total = p.sum()
    if total <= 0:
        raise ModelError(
            f"occupation measure has no mass for client {client.name!r}"
        )
    return p / total
