"""Dynamic-programming solvers for unconstrained average-cost CTMDPs.

The LP of :mod:`repro.core.lp` is the method the paper uses (it handles
constraints).  For the *unconstrained* problem, relative value iteration
and policy iteration on the uniformized chain must agree with the LP —
tests and the solver-ablation bench (`benchmarks/bench_ablation_solvers.py`)
rely on this cross-check, which guards both implementations.

Both solvers work on the uniformized discrete-time MDP.  By default they
run on the **compiled** sparse form
(:meth:`repro.core.compiled.CompiledCTMDP.uniformized_sparse`) with fully
vectorised Bellman sweeps; ``use_compiled=False`` selects the original
dense, per-state-loop reference implementation, which the equivalence
tests in ``tests/test_compiled.py`` hold the fast path against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.ctmdp import CTMDP, Action, State
from repro.core.policy import StationaryPolicy
from repro.errors import SolverError


@dataclass
class DPSolution:
    """Result of a dynamic-programming solve.

    Attributes
    ----------
    average_cost_rate:
        Optimal long-run average cost per unit of (continuous) time.
    policy:
        An optimal deterministic stationary policy.
    bias:
        The relative value (bias) vector ``h`` indexed like
        ``model.states``, normalised so ``h[0] = 0``.
    iterations:
        Number of iterations performed.
    """

    average_cost_rate: float
    policy: StationaryPolicy
    bias: np.ndarray
    iterations: int


def _grouped_pairs(model: CTMDP) -> List[Tuple[State, List[int]]]:
    """For each state, the row indices of its actions in the pair list."""
    pairs = model.state_action_pairs_ro()
    index_of_pair = {pair: k for k, pair in enumerate(pairs)}
    grouped = []
    for s in model.states_ro:
        rows = [index_of_pair[(s, a)] for a in model.actions_ro(s)]
        grouped.append((s, rows))
    return grouped


def _first_argmin_per_group(
    q_values: np.ndarray,
    group_mins: np.ndarray,
    pair_state: np.ndarray,
    n_states: int,
) -> np.ndarray:
    """Lowest pair row achieving each state's minimum Q-value.

    ``group_mins`` must be exact element values (e.g. from
    ``np.minimum.reduceat``) so the equality test below matches at least
    one row per state; writing hits in reverse keeps the *first* one,
    matching ``np.argmin``'s tie-breaking in the reference path.
    """
    hits = np.flatnonzero(q_values <= group_mins[pair_state])
    best = np.empty(n_states, dtype=np.int64)
    best[pair_state[hits][::-1]] = hits[::-1]
    return best


def relative_value_iteration(
    model: CTMDP,
    tol: float = 1e-10,
    max_iter: int = 500_000,
    use_compiled: bool = True,
) -> DPSolution:
    """Relative value iteration for the average-cost criterion.

    Iterates ``h <- T h - (T h)(s0)`` where ``T`` is the Bellman operator
    of the uniformized MDP, until the span of ``T h - h`` contracts below
    ``tol``.  Requires the uniformized chain to be aperiodic, which the
    self-loop slack introduced by strict uniformization guarantees.

    ``use_compiled=False`` runs the dense per-state reference loops.

    Raises
    ------
    SolverError
        If the span fails to contract within ``max_iter`` sweeps.
    """
    model.validate()
    if not use_compiled:
        return _reference_rvi(model, tol, max_iter)
    comp = model.compiled()
    p, c, rate = comp.uniformized_sparse()
    group_start = comp.group_start[:-1]
    pair_state = comp.pair_state
    n = comp.n_states
    h = np.zeros(n)
    for iteration in range(1, max_iter + 1):
        q_values = c + p @ h
        t_h = np.minimum.reduceat(q_values, group_start)
        diff = t_h - h
        span = float(diff.max() - diff.min())
        h = t_h - t_h[0]
        if span < tol:
            gain_per_step = float(0.5 * (diff.max() + diff.min()))
            best_rows = _first_argmin_per_group(q_values, t_h, pair_state, n)
            choice = {
                s: comp.pairs[best_rows[i]][1]
                for i, s in enumerate(comp.states)
            }
            policy = StationaryPolicy.deterministic(model, choice)
            return DPSolution(
                average_cost_rate=gain_per_step * rate,
                policy=policy,
                bias=h,
                iterations=iteration,
            )
    raise SolverError(
        f"relative value iteration did not converge in {max_iter} sweeps"
    )


def _reference_rvi(model: CTMDP, tol: float, max_iter: int) -> DPSolution:
    """Original dense per-state implementation (equivalence reference)."""
    p, c, pairs, rate = model.uniformized()
    grouped = _grouped_pairs(model)
    n = model.num_states
    h = np.zeros(n)
    for iteration in range(1, max_iter + 1):
        q_values = c + p @ h
        t_h = np.empty(n)
        best_rows = np.empty(n, dtype=int)
        for i, (_s, rows) in enumerate(grouped):
            values = q_values[rows]
            best = int(np.argmin(values))
            t_h[i] = values[best]
            best_rows[i] = rows[best]
        diff = t_h - h
        span = float(diff.max() - diff.min())
        h = t_h - t_h[0]
        if span < tol:
            gain_per_step = float(0.5 * (diff.max() + diff.min()))
            choice = {
                s: pairs[best_rows[i]][1] for i, (s, _rows) in enumerate(grouped)
            }
            policy = StationaryPolicy.deterministic(model, choice)
            return DPSolution(
                average_cost_rate=gain_per_step * rate,
                policy=policy,
                bias=h,
                iterations=iteration,
            )
    raise SolverError(
        f"relative value iteration did not converge in {max_iter} sweeps"
    )


def policy_iteration(
    model: CTMDP,
    max_iter: int = 10_000,
    use_compiled: bool = True,
) -> DPSolution:
    """Howard policy iteration for the average-cost criterion.

    Alternates exact policy evaluation (solving the Poisson equation of
    the uniformized chain) with greedy improvement.  Assumes the chain
    induced by every policy is unichain — true for all bus models built by
    this library because arrivals and services keep the occupancy lattice
    connected.

    ``use_compiled=False`` runs the dense per-state reference loops.

    Raises
    ------
    SolverError
        If no stable policy is found within ``max_iter`` improvements.
    """
    model.validate()
    if not use_compiled:
        return _reference_pi(model, max_iter)
    comp = model.compiled()
    p, c, rate = comp.uniformized_sparse()
    group_start = comp.group_start[:-1]
    pair_state = comp.pair_state
    n = comp.n_states
    # Start from each state's first action.
    current = comp.group_start[:-1].astype(np.int64).copy()
    for iteration in range(1, max_iter + 1):
        # --- evaluation: solve (I - P_pi) h + g 1 = c_pi with h[0] = 0.
        p_pi = p[current].toarray()
        c_pi = c[current]
        a = np.zeros((n + 1, n + 1))
        a[:n, :n] = np.eye(n) - p_pi
        a[:n, n] = 1.0
        a[n, 0] = 1.0  # pin h[0] = 0
        rhs = np.concatenate([c_pi, [0.0]])
        try:
            solution = np.linalg.lstsq(a, rhs, rcond=None)[0]
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise SolverError("policy evaluation failed") from exc
        h, gain = solution[:n], float(solution[n])
        # --- improvement (incumbent kept on ties to guarantee
        # termination, as in the reference path).
        q_values = c + p @ h
        mins = np.minimum.reduceat(q_values, group_start)
        best_rows = _first_argmin_per_group(q_values, mins, pair_state, n)
        improve = q_values[best_rows] < q_values[current] - 1e-12
        new_current = np.where(improve, best_rows, current)
        if (new_current == current).all():
            choice = {
                s: comp.pairs[current[i]][1] for i, s in enumerate(comp.states)
            }
            policy = StationaryPolicy.deterministic(model, choice)
            return DPSolution(
                average_cost_rate=gain * rate,
                policy=policy,
                bias=h - h[0],
                iterations=iteration,
            )
        current = new_current
    raise SolverError(f"policy iteration did not converge in {max_iter} steps")


def _reference_pi(model: CTMDP, max_iter: int) -> DPSolution:
    """Original dense per-state implementation (equivalence reference)."""
    p, c, pairs, rate = model.uniformized()
    grouped = _grouped_pairs(model)
    n = model.num_states
    current = np.array([rows[0] for (_s, rows) in grouped], dtype=int)
    for iteration in range(1, max_iter + 1):
        p_pi = p[current]
        c_pi = c[current]
        a = np.zeros((n + 1, n + 1))
        a[:n, :n] = np.eye(n) - p_pi
        a[:n, n] = 1.0
        a[n, 0] = 1.0  # pin h[0] = 0
        rhs = np.concatenate([c_pi, [0.0]])
        try:
            solution = np.linalg.lstsq(a, rhs, rcond=None)[0]
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise SolverError("policy evaluation failed") from exc
        h, gain = solution[:n], float(solution[n])
        q_values = c + p @ h
        new_current = current.copy()
        for i, (_s, rows) in enumerate(grouped):
            values = q_values[rows]
            best = rows[int(np.argmin(values))]
            # Keep the incumbent on ties to guarantee termination.
            if q_values[best] < q_values[current[i]] - 1e-12:
                new_current[i] = best
        if (new_current == current).all():
            choice = {
                s: pairs[current[i]][1] for i, (s, _rows) in enumerate(grouped)
            }
            policy = StationaryPolicy.deterministic(model, choice)
            return DPSolution(
                average_cost_rate=gain * rate,
                policy=policy,
                bias=h - h[0],
                iterations=iteration,
            )
        current = new_current
    raise SolverError(f"policy iteration did not converge in {max_iter} steps")
