"""Dynamic-programming solvers for unconstrained average-cost CTMDPs.

The LP of :mod:`repro.core.lp` is the method the paper uses (it handles
constraints).  For the *unconstrained* problem, relative value iteration
and policy iteration on the uniformized chain must agree with the LP —
tests and the solver-ablation bench (`benchmarks/bench_ablation_solvers.py`)
rely on this cross-check, which guards both implementations.

Both solvers work on the uniformized discrete-time MDP returned by
:meth:`repro.core.ctmdp.CTMDP.uniformized`; the discrete average cost per
step is converted back to a continuous-time cost *rate* by multiplying
with the uniformization rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.ctmdp import CTMDP, Action, State
from repro.core.policy import StationaryPolicy
from repro.errors import SolverError


@dataclass
class DPSolution:
    """Result of a dynamic-programming solve.

    Attributes
    ----------
    average_cost_rate:
        Optimal long-run average cost per unit of (continuous) time.
    policy:
        An optimal deterministic stationary policy.
    bias:
        The relative value (bias) vector ``h`` indexed like
        ``model.states``, normalised so ``h[0] = 0``.
    iterations:
        Number of iterations performed.
    """

    average_cost_rate: float
    policy: StationaryPolicy
    bias: np.ndarray
    iterations: int


def _grouped_pairs(model: CTMDP) -> List[Tuple[State, List[int]]]:
    """For each state, the row indices of its actions in the pair list."""
    pairs = model.state_action_pairs()
    index_of_pair = {pair: k for k, pair in enumerate(pairs)}
    grouped = []
    for s in model.states:
        rows = [index_of_pair[(s, a)] for a in model.actions(s)]
        grouped.append((s, rows))
    return grouped


def relative_value_iteration(
    model: CTMDP,
    tol: float = 1e-10,
    max_iter: int = 500_000,
) -> DPSolution:
    """Relative value iteration for the average-cost criterion.

    Iterates ``h <- T h - (T h)(s0)`` where ``T`` is the Bellman operator
    of the uniformized MDP, until the span of ``T h - h`` contracts below
    ``tol``.  Requires the uniformized chain to be aperiodic, which the
    self-loop slack introduced by strict uniformization guarantees.

    Raises
    ------
    SolverError
        If the span fails to contract within ``max_iter`` sweeps.
    """
    model.validate()
    p, c, pairs, rate = model.uniformized()
    grouped = _grouped_pairs(model)
    n = model.num_states
    h = np.zeros(n)
    for iteration in range(1, max_iter + 1):
        q_values = c + p @ h
        t_h = np.empty(n)
        best_rows = np.empty(n, dtype=int)
        for i, (_s, rows) in enumerate(grouped):
            values = q_values[rows]
            best = int(np.argmin(values))
            t_h[i] = values[best]
            best_rows[i] = rows[best]
        diff = t_h - h
        span = float(diff.max() - diff.min())
        h = t_h - t_h[0]
        if span < tol:
            gain_per_step = float(0.5 * (diff.max() + diff.min()))
            choice = {
                s: pairs[best_rows[i]][1] for i, (s, _rows) in enumerate(grouped)
            }
            policy = StationaryPolicy.deterministic(model, choice)
            return DPSolution(
                average_cost_rate=gain_per_step * rate,
                policy=policy,
                bias=h,
                iterations=iteration,
            )
    raise SolverError(
        f"relative value iteration did not converge in {max_iter} sweeps"
    )


def policy_iteration(
    model: CTMDP,
    max_iter: int = 10_000,
) -> DPSolution:
    """Howard policy iteration for the average-cost criterion.

    Alternates exact policy evaluation (solving the Poisson equation of
    the uniformized chain) with greedy improvement.  Assumes the chain
    induced by every policy is unichain — true for all bus models built by
    this library because arrivals and services keep the occupancy lattice
    connected.

    Raises
    ------
    SolverError
        If no stable policy is found within ``max_iter`` improvements.
    """
    model.validate()
    p, c, pairs, rate = model.uniformized()
    grouped = _grouped_pairs(model)
    n = model.num_states
    # Start from each state's first action.
    current = np.array([rows[0] for (_s, rows) in grouped], dtype=int)
    for iteration in range(1, max_iter + 1):
        # --- evaluation: solve (I - P_pi) h + g 1 = c_pi with h[0] = 0.
        p_pi = p[current]
        c_pi = c[current]
        a = np.zeros((n + 1, n + 1))
        a[:n, :n] = np.eye(n) - p_pi
        a[:n, n] = 1.0
        a[n, 0] = 1.0  # pin h[0] = 0
        rhs = np.concatenate([c_pi, [0.0]])
        try:
            solution = np.linalg.lstsq(a, rhs, rcond=None)[0]
        except np.linalg.LinAlgError as exc:  # pragma: no cover - defensive
            raise SolverError("policy evaluation failed") from exc
        h, gain = solution[:n], float(solution[n])
        # --- improvement.
        q_values = c + p @ h
        new_current = current.copy()
        for i, (_s, rows) in enumerate(grouped):
            values = q_values[rows]
            best = rows[int(np.argmin(values))]
            # Keep the incumbent on ties to guarantee termination.
            if q_values[best] < q_values[current[i]] - 1e-12:
                new_current[i] = best
        if (new_current == current).all():
            choice = {
                s: pairs[current[i]][1] for i, (s, _rows) in enumerate(grouped)
            }
            policy = StationaryPolicy.deterministic(model, choice)
            return DPSolution(
                average_cost_rate=gain * rate,
                policy=policy,
                bias=h - h[0],
                iterations=iteration,
            )
        current = new_current
    raise SolverError(f"policy iteration did not converge in {max_iter} steps")
