"""Lagrangian-dual solver for singly-constrained average-cost CTMDPs.

An independent route to the constrained optimum that cross-checks the
occupation-measure LP (:mod:`repro.core.lp`): dualise the single
constraint ``E[d] <= D`` with multiplier ``beta >= 0``, solve the
*unconstrained* problem ``min E[c + beta d]`` by policy iteration, and
drive ``beta`` by bisection until the constraint is tight (or slack at
``beta = 0``).

Feinberg 2002's structural result says the constrained optimum is a
mixture of at most two deterministic policies adjacent in ``beta`` — the
K-switching construction with K = 1.  :func:`solve_constrained_dual`
returns exactly that mixture, and tests assert its cost agrees with the
LP to numerical precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.ctmdp import CTMDP, State, Action
from repro.core.dp import policy_iteration
from repro.core.policy import StationaryPolicy
from repro.errors import InfeasibleError, SolverError


def _penalised_model(model: CTMDP, constraint: str, beta: float) -> CTMDP:
    """A copy of ``model`` with cost ``c + beta * d`` (same dynamics)."""
    penalised = CTMDP()
    for state in model.states:
        for action in model.actions(state):
            transitions = [
                (t.target, t.rate) for t in model.transitions(state, action)
            ]
            cost = model.cost_rate(state, action) + beta * model.constraint_rate(
                constraint, state, action
            )
            penalised.add_action(state, action, transitions, cost_rate=cost)
    # Preserve state ordering for states that are only transition targets.
    penalised.validate()
    return penalised


@dataclass
class DualSolution:
    """Result of the Lagrangian-dual solve.

    Attributes
    ----------
    cost:
        Optimal constrained average cost rate.
    constraint_value:
        Achieved long-run average of the constrained quantity.
    multiplier:
        The converged Lagrange multiplier ``beta``.
    policy_low / policy_high:
        The two deterministic policies adjacent in ``beta`` (equal when
        no mixing is needed).
    mix_probability:
        Weight on ``policy_high`` such that the mixture meets the bound
        with equality (0 when the constraint is slack).
    """

    cost: float
    constraint_value: float
    multiplier: float
    policy_low: StationaryPolicy
    policy_high: StationaryPolicy
    mix_probability: float

    @property
    def is_mixture(self) -> bool:
        """Whether the optimum genuinely randomises between two policies."""
        return 0.0 < self.mix_probability < 1.0


def _evaluate(
    model: CTMDP, policy: StationaryPolicy, constraint: str
) -> Tuple[float, float]:
    """(cost rate, constraint rate) of a policy on the original model."""
    x = policy.stationary_state_action()
    cost = sum(
        mass * model.cost_rate(s, a) for (s, a), mass in x.items()
    )
    value = sum(
        mass * model.constraint_rate(constraint, s, a)
        for (s, a), mass in x.items()
    )
    return cost, value


def solve_constrained_dual(
    model: CTMDP,
    constraint: str,
    bound: float,
    beta_max: float = 1e6,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> DualSolution:
    """Solve ``min E[c]  s.t.  E[d] <= bound`` by dual bisection.

    Raises
    ------
    InfeasibleError
        If even the most constraint-averse policy (``beta -> beta_max``)
        violates the bound.
    SolverError
        If bisection fails to bracket the bound (should not happen for
        monotone duals; guards against pathological models).
    """
    model.validate()
    if constraint not in model.constraint_names:
        raise SolverError(
            f"model has no constraint named {constraint!r}; "
            f"available: {model.constraint_names}"
        )

    def solve_at(beta: float) -> Tuple[StationaryPolicy, float, float]:
        penalised = _penalised_model(model, constraint, beta)
        policy = policy_iteration(penalised).policy
        # Re-wrap the policy onto the original model (same state/action
        # structure, different costs).
        choice = {
            s: next(iter(policy.action_probabilities(s)))
            for s in model.states
        }
        original_policy = StationaryPolicy.deterministic(model, choice)
        cost, value = _evaluate(model, original_policy, constraint)
        return original_policy, cost, value

    policy0, cost0, value0 = solve_at(0.0)
    if value0 <= bound + tol:
        return DualSolution(
            cost=cost0,
            constraint_value=value0,
            multiplier=0.0,
            policy_low=policy0,
            policy_high=policy0,
            mix_probability=0.0,
        )
    policy_hi, cost_hi, value_hi = solve_at(beta_max)
    if value_hi > bound + tol:
        raise InfeasibleError(
            f"constraint {constraint!r} <= {bound} unreachable: even at "
            f"beta={beta_max:.3g} the best policy attains {value_hi:.6g}"
        )
    lo, hi = 0.0, beta_max
    pol_lo, cost_lo, val_lo = policy0, cost0, value0
    pol_hi, cost_hi2, val_hi2 = policy_hi, cost_hi, value_hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        policy_mid, cost_mid, value_mid = solve_at(mid)
        if value_mid > bound:
            lo = mid
            pol_lo, cost_lo, val_lo = policy_mid, cost_mid, value_mid
        else:
            hi = mid
            pol_hi, cost_hi2, val_hi2 = policy_mid, cost_mid, value_mid
        if hi - lo < tol * max(1.0, hi):
            break
    # Mixture of the two bracketing deterministic policies that meets the
    # bound with equality (time-sharing interpretation).
    if abs(val_lo - val_hi2) < 1e-12:
        mix = 0.0
    else:
        mix = (val_lo - bound) / (val_lo - val_hi2)
        mix = float(np.clip(mix, 0.0, 1.0))
    cost = (1.0 - mix) * cost_lo + mix * cost_hi2
    value = (1.0 - mix) * val_lo + mix * val_hi2
    return DualSolution(
        cost=cost,
        constraint_value=value,
        multiplier=0.5 * (lo + hi),
        policy_low=pol_lo,
        policy_high=pol_hi,
        mix_probability=mix,
    )
