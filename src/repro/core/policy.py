"""Stationary (possibly randomised) policies for CTMDPs.

The occupation-measure LP of :mod:`repro.core.lp` returns a randomised
stationary policy: in each state the arbiter picks an action according to
a fixed distribution.  Feinberg 2002 shows that optimal policies for a
CTMDP with ``K`` constraints can be chosen to randomise in at most ``K``
states ("K-switching"); :meth:`StationaryPolicy.randomised_states` exposes
exactly which states those are so experiments can verify the bound.

The module also evaluates a fixed policy exactly: fixing the policy turns
the CTMDP into a CTMC whose stationary law yields the long-run cost and
constraint rates.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from repro.core.ctmdp import CTMDP, Action, State
from repro.errors import ModelError, PolicyError
from repro.queueing.markov_chain import ContinuousTimeMarkovChain


class StationaryPolicy:
    """A stationary randomised policy ``phi(a | s)``.

    Parameters
    ----------
    model:
        The CTMDP the policy is defined on.
    distributions:
        Mapping from state to a mapping from action to probability.  Each
        state's probabilities must sum to one over a subset of the state's
        available actions.
    """

    def __init__(
        self,
        model: CTMDP,
        distributions: Dict[State, Dict[Action, float]],
    ) -> None:
        model.validate()
        self.model = model
        self._dist: Dict[State, Dict[Action, float]] = {}
        for state in model.states:
            if state not in distributions:
                raise PolicyError(f"policy missing state {state!r}")
            dist = distributions[state]
            available = set(model.actions(state))
            total = 0.0
            cleaned: Dict[Action, float] = {}
            for action, prob in dist.items():
                if action not in available:
                    raise PolicyError(
                        f"policy uses unavailable action {action!r} "
                        f"in state {state!r}"
                    )
                if prob < -1e-12:
                    raise PolicyError(
                        f"negative probability {prob} for {action!r} "
                        f"in state {state!r}"
                    )
                prob = max(prob, 0.0)
                if prob > 0.0:
                    cleaned[action] = prob
                total += prob
            if abs(total - 1.0) > 1e-6:
                raise PolicyError(
                    f"probabilities in state {state!r} sum to {total:.6f}"
                )
            # Renormalise away round-off.
            self._dist[state] = {a: p / total for a, p in cleaned.items()}

    # ------------------------------------------------------------------

    @classmethod
    def deterministic(
        cls, model: CTMDP, choice: Dict[State, Action]
    ) -> "StationaryPolicy":
        """Build a deterministic policy from a state -> action map."""
        return cls(
            model, {s: {a: 1.0} for s, a in choice.items()}
        )

    @classmethod
    def uniform(cls, model: CTMDP) -> "StationaryPolicy":
        """The uniform-randomisation policy (useful as a test baseline)."""
        model.validate()
        dists = {}
        for s in model.states:
            actions = model.actions(s)
            dists[s] = {a: 1.0 / len(actions) for a in actions}
        return cls(model, dists)

    # ------------------------------------------------------------------

    def action_probabilities(self, state: State) -> Dict[Action, float]:
        """Distribution over actions in a state (only positive entries)."""
        try:
            return dict(self._dist[state])
        except KeyError:
            raise PolicyError(f"unknown state {state!r}") from None

    def is_deterministic(self) -> bool:
        """True if every state has a single action with probability one."""
        return all(len(d) == 1 for d in self._dist.values())

    def randomised_states(self, tol: float = 1e-9) -> List[State]:
        """States in which the policy genuinely randomises.

        Feinberg 2002: for ``K`` constraints an optimal policy exists that
        randomises in at most ``K`` states.  The sizing pipeline asserts
        this bound on the LP solution.
        """
        return [
            s
            for s, dist in self._dist.items()
            if sum(1 for p in dist.values() if p > tol) > 1
        ]

    # ------------------------------------------------------------------

    def induced_generator(self) -> np.ndarray:
        """Generator of the CTMC obtained by fixing this policy."""
        n = self.model.num_states
        q = np.zeros((n, n))
        for state in self.model.states:
            i = self.model.state_index(state)
            for action, prob in self._dist[state].items():
                for t in self.model.transitions(state, action):
                    j = self.model.state_index(t.target)
                    q[i, j] += prob * t.rate
        np.fill_diagonal(q, 0.0)
        np.fill_diagonal(q, -q.sum(axis=1))
        return q

    def induced_chain(self) -> ContinuousTimeMarkovChain:
        """The induced CTMC with the model's state labels."""
        return ContinuousTimeMarkovChain(
            self.induced_generator(), state_labels=self.model.states
        )

    def stationary_state_action(self) -> Dict[Tuple[State, Action], float]:
        """Occupation measure ``x(s, a) = pi(s) phi(a|s)`` of this policy."""
        pi = self.induced_chain().stationary_distribution()
        x: Dict[Tuple[State, Action], float] = {}
        for state in self.model.states:
            i = self.model.state_index(state)
            for action, prob in self._dist[state].items():
                x[(state, action)] = float(pi[i] * prob)
        return x

    def average_cost_rate(self) -> float:
        """Long-run average cost per unit time under this policy."""
        x = self.stationary_state_action()
        return sum(
            prob * self.model.cost_rate(s, a) for (s, a), prob in x.items()
        )

    def average_constraint_rate(self, name: str) -> float:
        """Long-run average of a named constraint cost."""
        x = self.stationary_state_action()
        return sum(
            prob * self.model.constraint_rate(name, s, a)
            for (s, a), prob in x.items()
        )

    def state_marginals(self) -> Dict[State, float]:
        """Stationary probability of each state under this policy."""
        pi = self.induced_chain().stationary_distribution()
        return {
            s: float(pi[self.model.state_index(s)]) for s in self.model.states
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "deterministic" if self.is_deterministic() else "randomised"
        return f"StationaryPolicy({kind}, states={self.model.num_states})"


def policy_from_occupation_measure(
    model: CTMDP,
    x: Dict[Tuple[State, Action], float],
    fallback: str = "first",
) -> StationaryPolicy:
    """Extract ``phi(a|s) = x(s,a) / sum_a x(s,a)`` from an occupation measure.

    States with (numerically) zero visitation get a fallback action: the
    first available one (``fallback='first'``) or a uniform distribution
    (``fallback='uniform'``).  Such states are never visited under the
    optimal stationary law, so the choice does not affect average costs on
    the recurrent class, but the simulator still needs a defined action
    everywhere.
    """
    if fallback not in ("first", "uniform"):
        raise PolicyError(f"unknown fallback {fallback!r}")
    model.validate()
    dists: Dict[State, Dict[Action, float]] = {}
    for state in model.states:
        actions = model.actions(state)
        mass = {a: max(x.get((state, a), 0.0), 0.0) for a in actions}
        total = sum(mass.values())
        if total > 1e-12:
            dists[state] = {a: m / total for a, m in mass.items() if m > 0}
        elif fallback == "first":
            dists[state] = {actions[0]: 1.0}
        else:
            dists[state] = {a: 1.0 / len(actions) for a in actions}
    return StationaryPolicy(model, dists)
