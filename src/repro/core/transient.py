"""Transient (finite-horizon) analysis of sized bus systems.

The paper optimises the long-run average; designers also ask what
happens in the first microseconds after reset or a traffic-mode switch,
when queues start empty and losses are transiently lower (or, after a
mode switch toward overload, climb toward the steady state).  This
module evaluates a (policy-fixed) bus model over a finite horizon via
uniformization — an extension enabled by the substrate, cross-checked
against simulation in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.bus_model import BusClient, build_joint_bus_ctmdp
from repro.core.policy import StationaryPolicy
from repro.errors import ModelError
from repro.queueing.markov_chain import ContinuousTimeMarkovChain


@dataclass(frozen=True)
class TransientPoint:
    """Expected instantaneous loss rate at one time point."""

    time: float
    loss_rate: float


def longest_queue_policy(model, clients: Sequence[BusClient]) -> StationaryPolicy:
    """The deterministic longest-queue arbitration as a policy.

    Matches the simulator's default arbiter, so transient predictions
    and simulations describe the same system.
    """
    clients = list(clients)
    name_to_index = {c.name: i for i, c in enumerate(clients)}
    choice = {}
    for state in model.states:
        actions = model.actions(state)
        if len(actions) == 1:
            choice[state] = actions[0]
            continue
        best = max(
            actions,
            key=lambda a: (state[name_to_index[a]], -name_to_index[a]),
        )
        choice[state] = best
    return StationaryPolicy.deterministic(model, choice)


def transient_loss_profile(
    clients: Sequence[BusClient],
    times: Sequence[float],
    policy: StationaryPolicy | None = None,
    initial_state: Tuple[int, ...] | None = None,
) -> List[TransientPoint]:
    """Expected loss rate of one bus at each requested time.

    Parameters
    ----------
    clients:
        Bus clients (with the *allocated* capacities).
    times:
        Increasing time points, ``t >= 0``.
    policy:
        Arbitration; defaults to longest-queue (the simulator's default).
    initial_state:
        Starting occupancy vector; defaults to all-empty (post-reset).

    Returns
    -------
    list of TransientPoint
        Instantaneous expected weighted loss rate
        ``sum_j w_j lambda_j P(q_j(t) = k_j)`` at each time.
    """
    clients = list(clients)
    if not times:
        raise ModelError("need at least one time point")
    times = [float(t) for t in times]
    if any(t < 0 for t in times):
        raise ModelError("times must be >= 0")
    if any(b < a for a, b in zip(times, times[1:])):
        raise ModelError("times must be non-decreasing")
    model = build_joint_bus_ctmdp(clients)
    if policy is None:
        policy = longest_queue_policy(model, clients)
    chain = policy.induced_chain()
    if initial_state is None:
        initial_state = tuple(0 for _ in clients)
    if initial_state not in set(model.states):
        raise ModelError(f"unknown initial state {initial_state!r}")
    p0 = np.zeros(chain.num_states)
    p0[chain.index_of(initial_state)] = 1.0
    # Instantaneous loss rate per state (independent of action).
    loss_by_state = np.zeros(chain.num_states)
    for state in model.states:
        rate = sum(
            c.loss_weight * c.arrival_rate
            for q, c in zip(state, clients)
            if q == c.capacity
        )
        loss_by_state[chain.index_of(state)] = rate
    points: List[TransientPoint] = []
    for t in times:
        pt = chain.transient_distribution(p0, t)
        points.append(
            TransientPoint(time=t, loss_rate=float(pt @ loss_by_state))
        )
    return points


def time_to_steady_state(
    clients: Sequence[BusClient],
    tolerance: float = 0.02,
    horizon: float = 200.0,
    resolution: int = 50,
) -> float:
    """First time the transient loss rate settles near its steady value.

    Returns the earliest probed time at which the instantaneous loss
    rate is within ``tolerance`` (relative) of the stationary loss rate,
    or ``horizon`` if it never settles within the probe window.
    """
    if tolerance <= 0:
        raise ModelError(f"tolerance must be > 0, got {tolerance}")
    if horizon <= 0 or resolution < 2:
        raise ModelError("horizon must be > 0 and resolution >= 2")
    clients = list(clients)
    model = build_joint_bus_ctmdp(clients)
    policy = longest_queue_policy(model, clients)
    chain = policy.induced_chain()
    loss_by_state = np.zeros(chain.num_states)
    for state in model.states:
        rate = sum(
            c.loss_weight * c.arrival_rate
            for q, c in zip(state, clients)
            if q == c.capacity
        )
        loss_by_state[chain.index_of(state)] = rate
    steady = float(chain.stationary_distribution() @ loss_by_state)
    scale = max(abs(steady), 1e-12)
    times = np.linspace(horizon / resolution, horizon, resolution)
    profile = transient_loss_profile(
        clients, times.tolist(), policy=policy
    )
    for point in profile:
        if abs(point.loss_rate - steady) / scale <= tolerance:
            return point.time
    return horizon
