"""Sensitivity analysis of a sizing result to traffic perturbations.

A sized design ships with rate estimates that are wrong in practice; a
designer needs to know which clients' buffers are *fragile* — where a
small traffic increase blows up the predicted loss — and how much slack
the allocation has.  This module provides finite-difference sensitivities
of the predicted loss with respect to each client's arrival rate, and a
robustness sweep that re-predicts loss under uniformly scaled traffic.

Everything here works on the analytic (birth-death truncation) predictor
so a full sensitivity report costs milliseconds, not simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.sizing import SizingResult
from repro.errors import ReproError
from repro.queueing.mm1k import MM1KQueue


@dataclass(frozen=True)
class ClientSensitivity:
    """Predicted-loss sensitivity of one client.

    Attributes
    ----------
    client:
        Buffer name.
    size:
        Allocated slots.
    base_loss_rate:
        Predicted loss rate at the nominal arrival rate.
    loss_gradient:
        d(predicted loss)/d(arrival rate) by central finite difference.
    headroom:
        Largest uniform rate multiplier this client tolerates before its
        predicted blocking exceeds the fragility threshold.
    """

    client: str
    size: int
    base_loss_rate: float
    loss_gradient: float
    headroom: float


def _effective_service_rate(result: SizingResult, client_name: str) -> float:
    """Service rate of a client within its subsystem (fair-share proxy).

    The marginal-based predictor needs a service rate; use the client's
    nominal rate scaled by its subsystem's residual capacity, matching
    the decomposition used elsewhere.
    """
    sub = result.split_system.subsystem_of_client(client_name)
    client = sub.client(client_name)
    rho_other = sum(
        c.arrival_rate / c.service_rate
        for c in sub.clients
        if c.name != client_name
    )
    return client.service_rate * max(1.0 - rho_other, 0.05)


def _predicted_loss(
    result: SizingResult, client_name: str, arrival_rate: float
) -> float:
    """Truncated-queue predicted loss of one client at a given rate."""
    size = result.allocation.size_of(client_name)
    if size < 1 or arrival_rate <= 0:
        return 0.0
    mu = _effective_service_rate(result, client_name)
    sub = result.split_system.subsystem_of_client(client_name)
    weight = sub.client(client_name).loss_weight
    return weight * MM1KQueue(arrival_rate, mu, size).loss_rate()


def client_sensitivities(
    result: SizingResult,
    rate_step: float = 0.05,
    fragility_blocking: float = 0.05,
    max_multiplier: float = 4.0,
) -> List[ClientSensitivity]:
    """Per-client loss sensitivities of a sizing result.

    Parameters
    ----------
    result:
        Output of :meth:`repro.core.sizing.BufferSizer.size`.
    rate_step:
        Relative step of the central finite difference.
    fragility_blocking:
        Blocking probability considered "fragile" for headroom search.
    max_multiplier:
        Upper bound of the headroom search.
    """
    if rate_step <= 0 or rate_step >= 1:
        raise ReproError(f"rate_step must be in (0, 1), got {rate_step}")
    if not 0.0 < fragility_blocking < 1.0:
        raise ReproError(
            f"fragility_blocking must be in (0, 1), got {fragility_blocking}"
        )
    sensitivities: List[ClientSensitivity] = []
    for sub in result.split_system.subsystems:
        for client in sub.clients:
            rate = client.arrival_rate
            if rate <= 0:
                sensitivities.append(
                    ClientSensitivity(
                        client=client.name,
                        size=result.allocation.size_of(client.name),
                        base_loss_rate=0.0,
                        loss_gradient=0.0,
                        headroom=max_multiplier,
                    )
                )
                continue
            base = _predicted_loss(result, client.name, rate)
            lo = _predicted_loss(
                result, client.name, rate * (1.0 - rate_step)
            )
            hi = _predicted_loss(
                result, client.name, rate * (1.0 + rate_step)
            )
            gradient = (hi - lo) / (2.0 * rate_step * rate)
            # Headroom: bisect the blocking threshold.
            size = result.allocation.size_of(client.name)
            mu = _effective_service_rate(result, client.name)

            def blocking_at(mult: float) -> float:
                return MM1KQueue(
                    rate * mult, mu, max(size, 1)
                ).blocking_probability()

            if blocking_at(max_multiplier) <= fragility_blocking:
                headroom = max_multiplier
            elif blocking_at(1e-6) > fragility_blocking:
                headroom = 0.0
            else:
                lo_m, hi_m = 1e-6, max_multiplier
                for _ in range(60):
                    mid = 0.5 * (lo_m + hi_m)
                    if blocking_at(mid) > fragility_blocking:
                        hi_m = mid
                    else:
                        lo_m = mid
                headroom = lo_m
            sensitivities.append(
                ClientSensitivity(
                    client=client.name,
                    size=size,
                    base_loss_rate=base,
                    loss_gradient=gradient,
                    headroom=headroom,
                )
            )
    return sorted(sensitivities, key=lambda s: s.headroom)


def robustness_sweep(
    result: SizingResult,
    multipliers: Sequence[float] = (0.8, 1.0, 1.2, 1.5),
) -> Dict[float, float]:
    """Total predicted loss under uniformly scaled traffic.

    Returns ``{multiplier: predicted total loss rate}``; the growth curve
    shows how brittle the allocation is to a global traffic forecast
    error.
    """
    if not multipliers:
        raise ReproError("need at least one multiplier")
    curve: Dict[float, float] = {}
    for mult in multipliers:
        if mult <= 0:
            raise ReproError(f"multipliers must be > 0, got {mult}")
        total = 0.0
        for sub in result.split_system.subsystems:
            for client in sub.clients:
                if client.arrival_rate <= 0:
                    continue
                total += _predicted_loss(
                    result, client.name, client.arrival_rate * mult
                )
        curve[float(mult)] = total
    return curve
