"""K-switching translation: occupation measures -> integer buffer sizes.

Feinberg 2002 shows optimal policies for constrained CTMDPs can be taken
as mixtures that randomise ("switch") in at most K states, K = number of
constraints.  The paper uses this machinery to "translate the state
action pair probabilities into buffer space requirements ... for a
certain processor bus pair".

Concretely this module turns the per-client queue-length marginals of
the LP solution into an integer allocation:

1.  Every client gets a minimum size (default 1 — a bufferless client
    cannot communicate at all).
2.  Remaining budget slots are handed out greedily: each extra slot goes
    to the client with the largest *marginal loss coverage*, i.e. the
    weighted probability mass ``w_i * lambda_i * P(q_i >= size_i)`` that
    the next slot would absorb.  This is exactly the water-filling the
    occupation measure implies: clients whose optimal stationary law
    keeps deep queues receive deep buffers.
3.  :func:`switching_mixture` exposes the two-point randomisation of the
    fractional relaxation (the literal K-switching construction) for
    callers that want an expected-budget-exact mixture rather than an
    integer allocation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import InfeasibleError, PolicyError


@dataclass(frozen=True)
class ClientDemand:
    """Sizing inputs for one client.

    Attributes
    ----------
    name:
        Client (buffer) name.
    marginal:
        Stationary queue-length distribution ``p[q]`` from the LP, length
        ``cap + 1``.
    arrival_rate:
        Mean offered rate (scales the value of covering tail mass).
    loss_weight:
        Relative importance of this client's losses.
    max_size:
        Hard upper bound on this client's buffer (the model's cap).
    """

    name: str
    marginal: np.ndarray
    arrival_rate: float
    loss_weight: float = 1.0
    max_size: int = 10**9

    def __post_init__(self) -> None:
        p = np.asarray(self.marginal, dtype=float)
        if p.ndim != 1 or p.size < 2:
            raise PolicyError(
                f"client {self.name!r}: marginal must be a 1-D array of "
                "length >= 2"
            )
        if (p < -1e-9).any():
            raise PolicyError(
                f"client {self.name!r}: marginal has negative entries"
            )
        total = p.sum()
        if not np.isfinite(total) or total <= 0:
            raise PolicyError(
                f"client {self.name!r}: marginal does not normalise"
            )
        object.__setattr__(self, "marginal", np.clip(p, 0.0, None) / total)
        if self.arrival_rate < 0:
            raise PolicyError(
                f"client {self.name!r}: arrival rate must be >= 0"
            )
        if self.loss_weight < 0:
            raise PolicyError(
                f"client {self.name!r}: loss weight must be >= 0"
            )
        if self.max_size < 1:
            raise PolicyError(
                f"client {self.name!r}: max size must be >= 1"
            )

    def tail(self, level: int) -> float:
        """``P(q >= level)`` under the marginal (clamped past the cap)."""
        if level <= 0:
            return 1.0
        if level >= self.marginal.size:
            return 0.0
        return float(self.marginal[level:].sum())

    def truncated_loss(self, size: int) -> float:
        """Predicted weighted loss rate if this buffer had ``size`` slots.

        For a birth-death client the stationary law truncated at ``size``
        is the renormalised restriction of the untruncated law, so the
        blocking probability at capacity ``size`` is
        ``m[size] / sum(m[:size + 1])``.  Sizes beyond the marginal's
        support are treated as lossless.
        """
        if size < 0:
            raise PolicyError(f"size must be >= 0, got {size}")
        if size >= self.marginal.size - 1 and self.marginal[-1] <= 0:
            return 0.0
        k = min(size, self.marginal.size - 1)
        cdf = float(self.marginal[: k + 1].sum())
        if cdf <= 0:
            return self.loss_weight * self.arrival_rate
        return (
            self.loss_weight * self.arrival_rate * float(self.marginal[k]) / cdf
        )

    def slot_value(self, current_size: int) -> float:
        """Marginal benefit of growing this client's buffer by one slot.

        The predicted loss-rate reduction
        ``truncated_loss(size) - truncated_loss(size + 1)`` — the
        water-filling quantity the K-switching translation optimises.
        """
        return max(
            self.truncated_loss(current_size)
            - self.truncated_loss(current_size + 1),
            0.0,
        )


def allocate_greedy(
    demands: Sequence[ClientDemand],
    budget: int,
    min_size: int = 1,
) -> Dict[str, int]:
    """Integer allocation summing exactly to ``budget``.

    Raises
    ------
    InfeasibleError
        If the budget cannot cover ``min_size`` per client, or exceeds
        the sum of the per-client caps.
    """
    demands = list(demands)
    if not demands:
        raise PolicyError("no clients to size")
    names = [d.name for d in demands]
    if len(set(names)) != len(names):
        raise PolicyError(f"duplicate client names: {names}")
    if min_size < 0:
        raise PolicyError(f"min size must be >= 0, got {min_size}")
    floor_total = min_size * len(demands)
    if budget < floor_total:
        raise InfeasibleError(
            f"budget {budget} below minimum {floor_total} "
            f"({len(demands)} clients x {min_size})"
        )
    cap_total = sum(min(d.max_size, budget) for d in demands)
    if budget > cap_total:
        raise InfeasibleError(
            f"budget {budget} exceeds total capacity cap {cap_total}"
        )
    sizes = {d.name: min(min_size, d.max_size) for d in demands}
    remaining = budget - sum(sizes.values())
    # Max-heap of (negative marginal value, name order) for determinism.
    heap: List[Tuple[float, str]] = []
    by_name = {d.name: d for d in demands}
    for d in demands:
        if sizes[d.name] < d.max_size:
            heapq.heappush(heap, (-d.slot_value(sizes[d.name]), d.name))
    while remaining > 0:
        if not heap:
            raise InfeasibleError(
                "ran out of clients below their caps while slots remain"
            )
        _neg, name = heapq.heappop(heap)
        demand = by_name[name]
        # Lazy re-evaluation: the stored value may be stale.
        fresh = -demand.slot_value(sizes[name])
        if heap and fresh > heap[0][0] + 1e-15:
            heapq.heappush(heap, (fresh, name))
            continue
        sizes[name] += 1
        remaining -= 1
        if sizes[name] < demand.max_size:
            heapq.heappush(heap, (-demand.slot_value(sizes[name]), name))
    return sizes


def expected_sizes(demands: Sequence[ClientDemand]) -> Dict[str, float]:
    """Expected occupancy per client — the fractional "ideal" sizes."""
    result = {}
    for d in demands:
        levels = np.arange(d.marginal.size)
        result[d.name] = float(d.marginal @ levels)
    return result


@dataclass(frozen=True)
class SwitchingMixture:
    """A two-point randomisation over deterministic allocations.

    ``low`` and ``high`` differ in exactly the switching clients; choosing
    ``high`` with probability ``probability`` meets the fractional budget
    in expectation — the literal K-switching construction (K = 1 budget
    constraint => at most one randomised decision).
    """

    low: Dict[str, int]
    high: Dict[str, int]
    probability: float

    def expected_total(self) -> float:
        """Expected number of slots used by the mixture."""
        low_total = sum(self.low.values())
        high_total = sum(self.high.values())
        return (
            low_total * (1.0 - self.probability)
            + high_total * self.probability
        )


def switching_mixture(
    demands: Sequence[ClientDemand],
    fractional_budget: float,
    min_size: int = 1,
) -> SwitchingMixture:
    """Mixture of floor/ceil allocations hitting a fractional budget.

    Builds the greedy allocation at ``floor(budget)`` and at
    ``ceil(budget)`` and mixes them with the fractional part as the
    switching probability.  With an integer budget the mixture collapses
    to a single deterministic allocation (probability 0).
    """
    if fractional_budget <= 0:
        raise PolicyError(
            f"fractional budget must be > 0, got {fractional_budget}"
        )
    lo = int(np.floor(fractional_budget))
    hi = int(np.ceil(fractional_budget))
    frac = fractional_budget - lo
    low = allocate_greedy(demands, lo, min_size=min_size)
    if hi == lo:
        return SwitchingMixture(low=low, high=dict(low), probability=0.0)
    high = allocate_greedy(demands, hi, min_size=min_size)
    return SwitchingMixture(low=low, high=high, probability=frac)
