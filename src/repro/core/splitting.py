"""Bridge splitting: decomposing a bridged architecture into linear subsystems.

Section 2 of the paper: when buses talk through bridges, the joint CTMDP
formulation acquires quadratic terms ("the equality constraints and the
cost function have quadratic terms ... one for each point in the bus
topology in which buses are connected").  The proposed solution — the
paper's contribution — is to **insert buffers at the bridges and split
the architecture into subsystems separated by those buffers**, each of
which is a *linear* CTMDP.

This module performs that split.  Each bus cluster of the topology
becomes a :class:`Subsystem` whose clients are

* its processors (arrival rate = total rate of flows they source), and
* one **bridge-entry buffer** per incident bridge direction that at least
  one flow uses (arrival rate = the carried rate of the flows entering
  the cluster over that bridge).

Carried rates depend on upstream blocking, which depends on the solution
— the fixed point resolved by :mod:`repro.core.sizing`.  The functions
here compute offered/carried rates for a given blocking estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.arch.topology import Topology
from repro.core.bus_model import BusClient
from repro.errors import TopologyError
from repro.sim.bridge import bridge_entry_bus, client_name_for_bridge


@dataclass(frozen=True)
class FlowHop:
    """One buffer a flow passes through: ``(subsystem index, client name)``."""

    subsystem: int
    client: str


@dataclass
class Subsystem:
    """One linear subsystem produced by the split (paper Figure 2).

    Attributes
    ----------
    index:
        Position in the deterministic subsystem ordering.
    cluster:
        The buses this subsystem arbitrates.
    clients:
        Buffer-owning clients (processors then bridge entries), with the
        arrival rates of the *current* fixed-point iterate.
    processor_names / bridge_client_names:
        Partition of ``clients`` by kind.
    """

    index: int
    cluster: frozenset
    clients: List[BusClient]
    processor_names: List[str]
    bridge_client_names: List[str]

    def client(self, name: str) -> BusClient:
        """Look up a client by name."""
        for c in self.clients:
            if c.name == name:
                return c
        raise TopologyError(
            f"subsystem {self.index} has no client {name!r}"
        )

    def with_rates(self, rates: Dict[str, float]) -> "Subsystem":
        """Copy with updated arrival rates (bridge fixed-point step)."""
        new_clients = [
            c.with_arrival_rate(rates.get(c.name, c.arrival_rate))
            for c in self.clients
        ]
        return Subsystem(
            index=self.index,
            cluster=self.cluster,
            clients=new_clients,
            processor_names=list(self.processor_names),
            bridge_client_names=list(self.bridge_client_names),
        )


@dataclass
class SplitSystem:
    """The full split: subsystems plus per-flow hop itineraries."""

    topology: Topology
    subsystems: List[Subsystem]
    flow_hops: Dict[str, Tuple[FlowHop, ...]]

    @property
    def num_subsystems(self) -> int:
        return len(self.subsystems)

    def all_client_names(self) -> List[str]:
        """Every buffer client across all subsystems (unique names)."""
        names: List[str] = []
        for sub in self.subsystems:
            names.extend(c.name for c in sub.clients)
        return names

    def subsystem_of_client(self, name: str) -> Subsystem:
        """The subsystem owning a client buffer."""
        for sub in self.subsystems:
            if any(c.name == name for c in sub.clients):
                return sub
        raise TopologyError(f"no subsystem owns client {name!r}")


def split(
    topology: Topology,
    capacity_cap: int,
    bridge_loss_weight: Optional[float] = None,
) -> SplitSystem:
    """Split a topology into bridge-separated linear subsystems.

    Parameters
    ----------
    topology:
        Validated architecture.
    capacity_cap:
        Upper bound on any single buffer's size; defines the CTMDP state
        spaces (the optimiser may allocate anything from 1 to the cap).
    bridge_loss_weight:
        Loss weight of bridge-entry buffers.  Defaults to each bridge's
        own ``loss_weight``.

    Returns
    -------
    SplitSystem
        Subsystems with *offered* (un-thinned) bridge rates; the sizing
        fixed point refines them via :func:`bridge_arrival_rates`.
    """
    topology.validate()
    if capacity_cap < 1:
        raise TopologyError(
            f"capacity cap must be >= 1, got {capacity_cap}"
        )
    clusters = topology.bus_clusters()
    cluster_index = {c: i for i, c in enumerate(clusters)}

    # Flow itineraries in client-name space.
    flow_hops: Dict[str, Tuple[FlowHop, ...]] = {}
    for flow_name, flow in topology.flows.items():
        route = topology.route(flow_name)
        hops = [
            FlowHop(cluster_index[route.clusters[0]], flow.source)
        ]
        for bridge_name, entered in zip(route.bridges, route.clusters[1:]):
            bridge = topology.bridges[bridge_name]
            entry = bridge_entry_bus(bridge, entered)
            hops.append(
                FlowHop(
                    cluster_index[entered],
                    client_name_for_bridge(bridge_name, entry),
                )
            )
        flow_hops[flow_name] = tuple(hops)

    # Offered rate per client (un-thinned: every flow contributes its full
    # rate at every hop).
    offered: Dict[str, float] = {}
    for flow_name, hops in flow_hops.items():
        rate = topology.flows[flow_name].rate
        for hop in hops:
            offered[hop.client] = offered.get(hop.client, 0.0) + rate

    subsystems: List[Subsystem] = []
    for i, cluster in enumerate(clusters):
        clients: List[BusClient] = []
        processor_names: List[str] = []
        bridge_client_names: List[str] = []
        for proc in topology.cluster_processors(cluster):
            rate = offered.get(proc.name, 0.0)
            clients.append(
                BusClient(
                    name=proc.name,
                    arrival_rate=rate,
                    service_rate=proc.service_rate,
                    capacity=capacity_cap,
                    loss_weight=proc.loss_weight,
                )
            )
            processor_names.append(proc.name)
        for bridge in topology.cluster_bridges(cluster):
            entry = bridge_entry_bus(bridge, cluster)
            name = client_name_for_bridge(bridge.name, entry)
            rate = offered.get(name, 0.0)
            if rate <= 0.0:
                # No flow enters this cluster over this bridge; no buffer
                # needs to be inserted on this side.
                continue
            weight = (
                bridge.loss_weight
                if bridge_loss_weight is None
                else bridge_loss_weight
            )
            clients.append(
                BusClient(
                    name=name,
                    arrival_rate=rate,
                    service_rate=bridge.service_rate,
                    capacity=capacity_cap,
                    loss_weight=weight,
                )
            )
            bridge_client_names.append(name)
        subsystems.append(
            Subsystem(
                index=i,
                cluster=cluster,
                clients=clients,
                processor_names=processor_names,
                bridge_client_names=bridge_client_names,
            )
        )
    return SplitSystem(
        topology=topology, subsystems=subsystems, flow_hops=flow_hops
    )


def bridge_arrival_rates(
    split_system: SplitSystem,
    blocking: Dict[str, float],
) -> Dict[str, float]:
    """Carried arrival rates at every bridge-entry buffer.

    Thin each flow hop by hop with the supplied per-client blocking
    probabilities (the reduced-load independence approximation); a
    bridge-entry buffer receives the sum of the surviving rates of the
    flows crossing it.

    Parameters
    ----------
    split_system:
        Output of :func:`split`.
    blocking:
        ``client name -> P(buffer full)`` from the latest LP solve;
        missing clients are treated as lossless.
    """
    rates: Dict[str, float] = {
        name: 0.0
        for sub in split_system.subsystems
        for name in sub.bridge_client_names
    }
    for flow_name, hops in split_system.flow_hops.items():
        rate = split_system.topology.flows[flow_name].rate
        for j, hop in enumerate(hops):
            if j > 0:
                rates[hop.client] = rates.get(hop.client, 0.0) + rate
            b = blocking.get(hop.client, 0.0)
            b = min(max(b, 0.0), 1.0)
            rate *= 1.0 - b
    return rates


def quadratic_coupling_count(topology: Topology) -> int:
    """Number of bridge couplings that would appear as quadratic terms.

    "The number of quadratic terms depend on how many points in the bus
    topology are there in which buses are connected to each other" —
    one per *used* bridge direction.  The ablation bench reports this as
    the size of the nonlinearity the split removes.
    """
    capacity_probe = 1
    system = split(topology, capacity_probe)
    return sum(
        len(sub.bridge_client_names) for sub in system.subsystems
    )
