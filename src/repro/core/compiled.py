"""Compiled kernels: CTMDPs frozen into flat CSR-style numpy arrays.

The dict-of-lists :class:`~repro.core.ctmdp.CTMDP` is convenient to build
but slow to solve against: every sweep of a DP solver or every LP
assembly walks Python dictionaries.  This module freezes a built model
into flat arrays once, after which the hot paths — uniformization,
Bellman sweeps, occupation-measure LP assembly — are pure numpy/scipy
operations:

:class:`CompiledCTMDP`
    A read-only array view of any CTMDP: per-pair transition triplets,
    exit rates, cost and constraint vectors, plus a **sparse**
    uniformization (``scipy.sparse.csr_matrix`` instead of the dense
    ``(pairs, states)`` matrix of :meth:`CTMDP.uniformized`).

:class:`CompiledBusLattice`
    The joint bus occupancy model of
    :func:`repro.core.bus_model.build_joint_bus_ctmdp` built *directly*
    into arrays — no intermediate CTMDP object — with every transition
    rate mapped back to its client parameter so arrival rates can be
    **refreshed in place** across the bridge-rate fixed point instead of
    rebuilding the model.

:class:`CompiledClientChain`
    The decomposed per-client birth-death model of
    :func:`repro.core.bus_model.build_client_chain_ctmdp`, frozen once
    per client with the same in-place :meth:`~CompiledClientChain.refresh`
    capability — the chain-path counterpart of the lattice, so
    oversized subsystems stop rebuilding their tiny CTMDPs every
    fixed-point iteration too.

:func:`solve_sparse_lp`
    A thin wrapper over the HiGHS solver (scipy's vendored bindings)
    that keeps the simplex **basis** between solves, so successive LPs
    that differ only in coefficients warm-start in milliseconds.  Falls
    back to ``scipy.optimize.linprog`` when the bindings are missing.

Exact reproducibility note: every accumulation below (exit rates, loss
cost rates) is performed in the same client order and with the same IEEE
operations as the dict-based builders, so the compiled LP coefficients
are bitwise identical to the reference assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csc_matrix, csr_matrix

from repro.errors import ModelError

# The HiGHS bindings scipy vendors for its `method="highs"` family.  They
# expose basis warm-starting, which scipy.optimize.linprog does not.
try:  # pragma: no cover - exercised implicitly by every LP solve
    from scipy.optimize._highspy import _core as _highs
    HAVE_HIGHS = True
except Exception:  # pragma: no cover - fallback container without bindings
    _highs = None
    HAVE_HIGHS = False


# ----------------------------------------------------------------------
# Compiled CTMDP view
# ----------------------------------------------------------------------


class CompiledCTMDP:
    """Flat-array view of a validated CTMDP.

    Attributes
    ----------
    states / pairs:
        The model's states and (state, action) pairs in canonical order
        (states by insertion, actions within a state by insertion).
    pair_state:
        ``pair_state[k]`` is the dense index of pair ``k``'s source
        state.  Monotone non-decreasing by construction.
    group_start:
        ``group_start[i]:group_start[i+1]`` is the pair-row range of
        state ``i`` — the grouping DP solvers minimise over.
    t_pair / t_target / t_rate:
        Transition triplets: entry ``e`` is a rated transition of pair
        ``t_pair[e]`` into state ``t_target[e]`` at rate ``t_rate[e]``.
    exit_rates / cost_rates:
        Per-pair total departure rate and cost rate.
    """

    __slots__ = (
        "states",
        "pairs",
        "n_states",
        "n_pairs",
        "pair_state",
        "group_start",
        "t_pair",
        "t_target",
        "t_rate",
        "exit_rates",
        "cost_rates",
        "max_exit_rate",
        "_constraint_vectors",
    )

    def __init__(
        self,
        states: List,
        pairs: List[Tuple],
        pair_state: np.ndarray,
        t_pair: np.ndarray,
        t_target: np.ndarray,
        t_rate: np.ndarray,
        exit_rates: np.ndarray,
        cost_rates: np.ndarray,
        constraint_vectors: Dict[str, np.ndarray],
    ) -> None:
        self.states = states
        self.pairs = pairs
        self.n_states = len(states)
        self.n_pairs = len(pairs)
        self.pair_state = pair_state
        self.group_start = np.searchsorted(
            pair_state, np.arange(self.n_states + 1)
        )
        self.t_pair = t_pair
        self.t_target = t_target
        self.t_rate = t_rate
        self.exit_rates = exit_rates
        self.cost_rates = cost_rates
        self.max_exit_rate = float(exit_rates.max()) if len(exit_rates) else 0.0
        self._constraint_vectors = constraint_vectors

    # ------------------------------------------------------------------

    @classmethod
    def from_model(cls, model) -> "CompiledCTMDP":
        """Freeze a validated :class:`~repro.core.ctmdp.CTMDP`."""
        model.validate()
        states = model.states_ro
        state_index = {s: i for i, s in enumerate(states)}
        pairs: List[Tuple] = []
        pair_state: List[int] = []
        t_pair: List[int] = []
        t_target: List[int] = []
        t_rate: List[float] = []
        exit_rates: List[float] = []
        cost_rates: List[float] = []
        for i, s in enumerate(states):
            for a in model.actions_ro(s):
                k = len(pairs)
                pairs.append((s, a))
                pair_state.append(i)
                # Accumulate the exit rate in transition order — the same
                # float additions the dict-based LP assembly performs.
                exit_rate = 0.0
                for t in model.transitions_ro(s, a):
                    t_pair.append(k)
                    t_target.append(state_index[t.target])
                    t_rate.append(t.rate)
                    exit_rate += t.rate
                exit_rates.append(exit_rate)
                cost_rates.append(model.cost_rate(s, a))
        compiled = cls(
            states=list(states),
            pairs=pairs,
            pair_state=np.asarray(pair_state, dtype=np.int64),
            t_pair=np.asarray(t_pair, dtype=np.int64),
            t_target=np.asarray(t_target, dtype=np.int64),
            t_rate=np.asarray(t_rate, dtype=float),
            exit_rates=np.asarray(exit_rates, dtype=float),
            cost_rates=np.asarray(cost_rates, dtype=float),
            constraint_vectors={},
        )
        for name in model.constraint_names:
            vec = np.zeros(compiled.n_pairs)
            for k, (s, a) in enumerate(pairs):
                vec[k] = model.constraint_rate(name, s, a)
            compiled._constraint_vectors[name] = vec
        return compiled

    # ------------------------------------------------------------------

    def constraint_vector(self, name: str) -> np.ndarray:
        """Per-pair constraint cost rates (zeros when the name is unset)."""
        vec = self._constraint_vectors.get(name)
        if vec is None:
            vec = np.zeros(self.n_pairs)
        return vec

    def pair_index(self) -> Dict[Tuple, int]:
        """``(state, action) -> pair row`` lookup (built on demand)."""
        return {pair: k for k, pair in enumerate(self.pairs)}

    def balance_coo(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triplets of the occupation-measure balance equations.

        Rows are state indices, columns are pair indices; entry
        ``(j, k)`` is the rate of pair ``k`` into state ``j``, with the
        negated exit rate on each pair's own state (the diagonal of the
        generator).
        """
        rows = np.concatenate([self.t_target, self.pair_state])
        cols = np.concatenate(
            [self.t_pair, np.arange(self.n_pairs, dtype=np.int64)]
        )
        vals = np.concatenate([self.t_rate, -self.exit_rates])
        return rows, cols, vals

    def uniformized_sparse(
        self, rate: Optional[float] = None, tol: float = 1e-6
    ) -> Tuple[csr_matrix, np.ndarray, float]:
        """Sparse uniformization: CSR one-step matrix over (pairs, states).

        Same semantics as the dense :meth:`CTMDP.uniformized` — rows are
        renormalised within ``tol`` and a :class:`ModelError` names the
        offending pair beyond it — but the matrix is a
        ``scipy.sparse.csr_matrix`` whose only stored entries are the
        rated transitions plus the diagonal self-loop slack.
        """
        max_exit = self.max_exit_rate
        if rate is None:
            rate = max_exit * (1.0 + 1e-9) if max_exit > 0 else 1.0
        elif rate < max_exit:
            raise ModelError(
                f"uniformization rate {rate:.3g} below max exit {max_exit:.3g}"
            )
        probs = self.t_rate / rate
        # Self-loop slack from the frozen exit rates; the row-sum check
        # below cross-checks them against the transition entries, so any
        # drift between the two raises instead of being renormalised away.
        stay = 1.0 - self.exit_rates / rate
        if (stay < -1e-12).any():
            raise ModelError("uniformization produced negative probabilities")
        stay = np.clip(stay, 0.0, None)
        rows = np.concatenate(
            [self.t_pair, np.arange(self.n_pairs, dtype=np.int64)]
        )
        cols = np.concatenate([self.t_target, self.pair_state])
        vals = np.concatenate([probs, stay])
        p = csr_matrix(
            (vals, (rows, cols)), shape=(self.n_pairs, self.n_states)
        )
        sums = np.asarray(p.sum(axis=1)).ravel()
        deviation = np.abs(sums - 1.0)
        if (deviation > tol).any():
            k = int(deviation.argmax())
            raise ModelError(
                f"uniformized row for pair {self.pairs[k]!r} sums to "
                f"{sums[k]:.12g}; transition rates are inconsistent"
            )
        # Renormalise away round-off (row sums are 1 up to float noise).
        inv = 1.0 / sums
        p = csr_matrix(
            (p.data * np.repeat(inv, np.diff(p.indptr)), p.indices, p.indptr),
            shape=p.shape,
        )
        c = self.cost_rates / rate
        return p, c, float(rate)


# ----------------------------------------------------------------------
# Parameterized joint-bus lattice
# ----------------------------------------------------------------------


class CompiledBusLattice:
    """The joint bus CTMDP compiled directly into refreshable arrays.

    Builds the same model as
    :func:`repro.core.bus_model.build_joint_bus_ctmdp` — actions are the
    serveable clients (or idle), costs are weighted full-buffer loss
    rates — but skips the Python dict representation entirely.  Every
    transition-rate entry is tagged with the client parameter it equals
    (arrival rate ``lambda_j`` or service rate ``mu_i``), so
    :meth:`refresh` updates all coefficient arrays for new arrival rates
    without touching the structure.

    States are enumerated in ``itertools.product`` (lattice) order.  The
    dict builder instead registers states in encounter order (a target
    state is registered the first time a transition reaches it), so the
    two assign different dense indices; the models are identical up to
    that relabelling, and the sizing equivalence tests pin the resulting
    allocations to the dict-based reference path.

    ``clients`` is any sequence of objects with ``name``,
    ``arrival_rate``, ``service_rate``, ``capacity`` and ``loss_weight``
    attributes (duck-typed to avoid importing the model layer here).
    """

    __slots__ = (
        "clients",
        "names",
        "n_clients",
        "capacities",
        "n_states",
        "n_pairs",
        "occ",
        "pair_state",
        "pair_client",
        "t_pair",
        "t_target",
        "t_param",
        "t_rate",
        "exit_rates",
        "cost_rates",
        "_arr_mask",
        "_full_mask",
        "_space",
        "_client_space",
        "_lambdas",
        "_mus",
        "_pairs_cache",
    )

    def __init__(self, clients: Sequence) -> None:
        clients = list(clients)
        if not clients:
            raise ModelError("a bus needs at least one client")
        names = [c.name for c in clients]
        if len(set(names)) != len(names):
            raise ModelError(f"duplicate client names in {names}")
        self.clients = clients
        self.names = names
        n = self.n_clients = len(clients)
        caps = self.capacities = np.array(
            [c.capacity for c in clients], dtype=np.int64
        )
        self._lambdas = np.array([c.arrival_rate for c in clients])
        self._mus = np.array([c.service_rate for c in clients])

        # Occupancy lattice in itertools.product order (last axis fastest).
        grids = np.meshgrid(
            *(np.arange(k + 1) for k in caps), indexing="ij"
        )
        occ = self.occ = np.stack(
            [g.reshape(-1) for g in grids], axis=1
        ).astype(np.int64)
        s_count = self.n_states = occ.shape[0]
        # State index strides: product order means the last client varies
        # fastest, so stride_j = prod_{l > j} (k_l + 1).
        strides = np.ones(n, dtype=np.int64)
        for j in range(n - 2, -1, -1):
            strides[j] = strides[j + 1] * (caps[j + 1] + 1)

        # Pairs: one per (state, serveable client); idle only when no
        # buffer is occupied — exactly build_joint_bus_ctmdp's actions.
        serveable = occ > 0  # [S, n]
        acts_per_state = np.maximum(serveable.sum(axis=1), 1)
        p_count = self.n_pairs = int(acts_per_state.sum())
        pair_state = np.repeat(np.arange(s_count), acts_per_state)
        pair_client = np.full(p_count, -1, dtype=np.int64)
        # Serveable clients in index order within each state: np.nonzero
        # iterates row-major, so entries of one state are consecutive and
        # ordered by client index; their rank within the state places
        # them at the right pair row.
        state_ids, client_ids = np.nonzero(serveable)
        offsets = np.concatenate([[0], np.cumsum(acts_per_state)])[:-1]
        first_of_state = np.searchsorted(state_ids, np.arange(s_count))
        rank = np.arange(len(state_ids)) - first_of_state[state_ids]
        pair_client[offsets[state_ids] + rank] = client_ids
        self.pair_state = pair_state
        self.pair_client = pair_client

        # Structural masks (fixed for the life of the lattice).
        lam_positive = self._lambdas > 0
        arr_ok = (occ < caps[None, :]) & lam_positive[None, :]  # [S, n]
        self._arr_mask = arr_ok[pair_state]  # [P, n]
        self._full_mask = (occ == caps[None, :])[pair_state]  # [P, n]

        # Transition entries: arrivals (client order) then services.
        a_pair, a_client = np.nonzero(self._arr_mask)
        a_target = (
            pair_state[a_pair] + strides[a_client]
        )  # occupancy +1 in dim j
        served = np.flatnonzero(pair_client >= 0)
        s_client = pair_client[served]
        s_target = pair_state[served] - strides[s_client]
        self.t_pair = np.concatenate([a_pair, served])
        self.t_target = np.concatenate([a_target, s_target])
        self.t_param = np.concatenate([a_client, self.n_clients + s_client])
        self.t_rate = np.empty(len(self.t_pair))

        # Static constraint vectors.
        space = occ.sum(axis=1).astype(float)
        self._space = space[pair_state]
        self._client_space = occ[pair_state].astype(float)

        self.exit_rates = np.empty(p_count)
        self.cost_rates = np.empty(p_count)
        self._pairs_cache = None
        self._recompute_values()

    # ------------------------------------------------------------------

    def _recompute_values(self) -> None:
        params = np.concatenate([self._lambdas, self._mus])
        self.t_rate[:] = params[self.t_param]
        # Exit rate: arrivals in client order, then the service rate —
        # added one term at a time to mirror the reference accumulation.
        exit_rates = np.zeros(self.n_pairs)
        for j in range(self.n_clients):
            exit_rates += np.where(
                self._arr_mask[:, j], self._lambdas[j], 0.0
            )
        exit_rates += np.where(
            self.pair_client >= 0,
            self._mus[np.maximum(self.pair_client, 0)],
            0.0,
        )
        self.exit_rates[:] = exit_rates
        # Weighted loss rate while any buffer is full, in client order.
        cost = np.zeros(self.n_pairs)
        weights = np.array([c.loss_weight for c in self.clients])
        for j in range(self.n_clients):
            cost += np.where(
                self._full_mask[:, j],
                weights[j] * self._lambdas[j],
                0.0,
            )
        self.cost_rates[:] = cost

    def refresh(self, arrival_rates: Dict[str, float]) -> bool:
        """Update arrival rates in place; returns False when the
        zero/positive pattern changed (caller must rebuild the lattice).
        """
        new = self._lambdas.copy()
        for j, name in enumerate(self.names):
            if name in arrival_rates:
                new[j] = arrival_rates[name]
        if ((new > 0) != (self._lambdas > 0)).any():
            return False
        self._lambdas = new
        self._recompute_values()
        return True

    # ------------------------------------------------------------------

    def constraint_vector(self, name: str) -> np.ndarray:
        from repro.core.bus_model import SPACE  # local to avoid a cycle

        if name == SPACE:
            return self._space
        prefix = SPACE + ":"
        if name.startswith(prefix):
            try:
                j = self.names.index(name[len(prefix):])
            except ValueError:
                return np.zeros(self.n_pairs)
            return self._client_space[:, j]
        return np.zeros(self.n_pairs)

    def balance_coo(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triplets of the balance equations (see CompiledCTMDP)."""
        rows = np.concatenate([self.t_target, self.pair_state])
        cols = np.concatenate(
            [self.t_pair, np.arange(self.n_pairs, dtype=np.int64)]
        )
        vals = np.concatenate([self.t_rate, -self.exit_rates])
        return rows, cols, vals

    @property
    def pairs(self) -> List[Tuple]:
        """(state tuple, action) pairs, materialised on first use."""
        if self._pairs_cache is None:
            from repro.core.bus_model import IDLE  # avoid import cycle

            states = [tuple(row) for row in self.occ.tolist()]
            pairs = []
            for k in range(self.n_pairs):
                s = states[self.pair_state[k]]
                c = self.pair_client[k]
                pairs.append((s, IDLE if c < 0 else self.names[c]))
            self._pairs_cache = pairs
        return self._pairs_cache

    def client_marginals(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-client occupancy marginals of an occupation measure.

        Vectorised equivalent of
        :func:`repro.core.bus_model.joint_client_marginals`.
        """
        occ_of_pair = self.occ[self.pair_state]  # [P, n]
        marginals: Dict[str, np.ndarray] = {}
        for j, c in enumerate(self.clients):
            p = np.bincount(
                occ_of_pair[:, j], weights=x, minlength=c.capacity + 1
            )
            total = p.sum()
            if total <= 0:
                raise ModelError(
                    f"occupation measure has no mass for client {c.name!r}"
                )
            marginals[c.name] = p / total
        return marginals


# ----------------------------------------------------------------------
# Parameterized per-client chain
# ----------------------------------------------------------------------


class CompiledClientChain:
    """One client's decomposed serve/idle chain, compiled and refreshable.

    Builds the same model as
    :func:`repro.core.bus_model.build_client_chain_ctmdp` — states are
    the client's occupancies ``0..k``; every state has an ``idle``
    action and (for ``q > 0``) a ``serve`` action carrying the
    :data:`~repro.core.bus_model.BUS_TIME` constraint rate — directly
    into the flat arrays :class:`CompiledCTMDP` would produce, skipping
    the dict representation.  Every coefficient is computed with the
    same IEEE operations in the same order as the reference builder, so
    the arrays are bitwise identical to
    ``build_client_chain_ctmdp(client, h).compiled()`` (asserted by the
    equivalence tests).

    :meth:`refresh` swaps in a new arrival rate (and the matching
    holding cost) without touching the structure, which is what lets
    :class:`~repro.core.sizing.BufferSizer` freeze chain blocks once per
    client and only update rate coefficients across bridge-rate
    fixed-point iterations.  Like the lattice, a refresh that flips the
    zero/positive arrival pattern returns False and the caller rebuilds
    (the arrival transitions themselves appear or vanish).

    ``client`` is any object with ``name``, ``arrival_rate``,
    ``service_rate``, ``capacity`` and ``loss_weight`` attributes.
    """

    __slots__ = (
        "name",
        "capacity",
        "service_rate",
        "loss_weight",
        "arrival_rate",
        "holding_cost_rate",
        "n_states",
        "n_pairs",
        "pair_state",
        "t_pair",
        "t_target",
        "t_rate",
        "exit_rates",
        "cost_rates",
        "_serve_mask",
        "_arrival_entries",
        "_space",
        "_bus_time",
        "_pairs_cache",
    )

    def __init__(self, client, holding_cost_rate: float = 0.0) -> None:
        if holding_cost_rate < 0:
            raise ModelError(
                f"holding cost rate must be >= 0, got {holding_cost_rate}"
            )
        k = int(client.capacity)
        if k < 1:
            raise ModelError(
                f"client {client.name!r}: capacity must be >= 1, got {k}"
            )
        self.name = client.name
        self.capacity = k
        self.service_rate = float(client.service_rate)
        self.loss_weight = float(client.loss_weight)
        self.arrival_rate = float(client.arrival_rate)
        self.holding_cost_rate = float(holding_cost_rate)

        # Pair order mirrors the reference builder: per state q, `idle`
        # first, then `serve` for q > 0.
        self.n_states = k + 1
        pair_state = [0]
        serve_mask = [False]
        for q in range(1, k + 1):
            pair_state.extend((q, q))
            serve_mask.extend((False, True))
        self.pair_state = np.asarray(pair_state, dtype=np.int64)
        self._serve_mask = np.asarray(serve_mask, dtype=bool)
        self.n_pairs = len(pair_state)
        self._space = self.pair_state.astype(float)
        self._bus_time = self._serve_mask.astype(float)

        # Transition structure: per pair, the arrival (q < k and
        # lambda > 0) precedes the service transition — the insertion
        # order of the dict builder.
        has_arrival = (self.pair_state < k) & (self.arrival_rate > 0)
        entries: List[Tuple[int, int, bool]] = []  # (pair, target, is_arrival)
        for p in range(self.n_pairs):
            q = int(self.pair_state[p])
            if has_arrival[p]:
                entries.append((p, q + 1, True))
            if serve_mask[p]:
                entries.append((p, q - 1, False))
        self.t_pair = np.asarray([e[0] for e in entries], dtype=np.int64)
        self.t_target = np.asarray([e[1] for e in entries], dtype=np.int64)
        self._arrival_entries = np.asarray(
            [e[2] for e in entries], dtype=bool
        )
        self.t_rate = np.empty(len(entries))
        self.exit_rates = np.empty(self.n_pairs)
        self.cost_rates = np.empty(self.n_pairs)
        self._pairs_cache = None
        self._recompute_values()

    # ------------------------------------------------------------------

    def _recompute_values(self) -> None:
        lam = self.arrival_rate
        mu = self.service_rate
        self.t_rate[:] = np.where(self._arrival_entries, lam, mu)
        # Exit rates accumulate arrival-then-service, mirroring the
        # reference loop's addition order: fl(fl(0 + lam) + mu).
        has_arrival = (self.pair_state < self.capacity) & (lam > 0)
        exit_rates = np.where(has_arrival, lam, 0.0)
        exit_rates = exit_rates + np.where(self._serve_mask, mu, 0.0)
        self.exit_rates[:] = exit_rates
        # Cost: fl(fl(w * lam at q == k) + fl(h * q)).
        loss = np.where(
            self.pair_state == self.capacity,
            self.loss_weight * lam,
            0.0,
        )
        self.cost_rates[:] = loss + self.holding_cost_rate * self._space

    def refresh(
        self, arrival_rate: float, holding_cost_rate: float
    ) -> bool:
        """Swap in new rate coefficients; False on a structure change.

        A structure change means the zero/positive arrival pattern
        flipped (arrival transitions would appear or vanish); the
        caller must rebuild the chain in that case, exactly like
        :meth:`CompiledBusLattice.refresh`.
        """
        if holding_cost_rate < 0:
            raise ModelError(
                f"holding cost rate must be >= 0, got {holding_cost_rate}"
            )
        if (float(arrival_rate) > 0) != (self.arrival_rate > 0):
            return False
        self.arrival_rate = float(arrival_rate)
        self.holding_cost_rate = float(holding_cost_rate)
        self._recompute_values()
        return True

    # ------------------------------------------------------------------

    def constraint_vector(self, name: str) -> np.ndarray:
        from repro.core.bus_model import BUS_TIME, SPACE  # avoid cycle

        if name == BUS_TIME:
            return self._bus_time
        if name == SPACE or name == f"{SPACE}:{self.name}":
            return self._space
        return np.zeros(self.n_pairs)

    def balance_coo(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """COO triplets of the balance equations (see CompiledCTMDP)."""
        rows = np.concatenate([self.t_target, self.pair_state])
        cols = np.concatenate(
            [self.t_pair, np.arange(self.n_pairs, dtype=np.int64)]
        )
        vals = np.concatenate([self.t_rate, -self.exit_rates])
        return rows, cols, vals

    @property
    def pairs(self) -> List[Tuple]:
        """(occupancy, action) pairs, materialised on first use."""
        if self._pairs_cache is None:
            from repro.core.bus_model import IDLE  # avoid import cycle

            pairs = []
            for p in range(self.n_pairs):
                q = int(self.pair_state[p])
                pairs.append((q, "serve" if self._serve_mask[p] else IDLE))
            self._pairs_cache = pairs
        return self._pairs_cache


# ----------------------------------------------------------------------
# Warm-startable sparse LP solver
# ----------------------------------------------------------------------


@dataclass
class SparseLPResult:
    """Raw result of :func:`solve_sparse_lp`.

    ``status`` is ``"optimal"``, ``"infeasible"`` or ``"error"``;
    ``basis`` is an opaque warm-start token (None when unavailable).
    """

    x: np.ndarray
    objective: float
    status: str
    message: str
    iterations: int
    basis: object = None


def _run_highs(
    cost: np.ndarray,
    a: csc_matrix,
    row_lower: np.ndarray,
    row_upper: np.ndarray,
    warm_basis: object,
    solver: Optional[str],
) -> SparseLPResult:
    h = _highs._Highs()
    h.setOptionValue("output_flag", False)
    n = len(cost)
    lp = _highs.HighsLp()
    lp.num_col_ = n
    lp.num_row_ = a.shape[0]
    lp.col_cost_ = np.asarray(cost, dtype=float)
    lp.col_lower_ = np.zeros(n)
    lp.col_upper_ = np.full(n, np.inf)
    lp.row_lower_ = row_lower
    lp.row_upper_ = row_upper
    lp.a_matrix_.format_ = _highs.MatrixFormat.kColwise
    lp.a_matrix_.start_ = a.indptr
    lp.a_matrix_.index_ = a.indices
    lp.a_matrix_.value_ = a.data
    h.passModel(lp)
    if warm_basis is not None:
        h.setBasis(warm_basis)
    elif solver is not None:
        h.setOptionValue("solver", solver)
    h.run()
    status = h.getModelStatus()
    if status == _highs.HighsModelStatus.kOptimal:
        kind = "optimal"
    elif status in (
        _highs.HighsModelStatus.kInfeasible,
        _highs.HighsModelStatus.kUnboundedOrInfeasible,
    ):
        kind = "infeasible"
    else:
        kind = "error"
    info = h.getInfo()
    iterations = int(
        max(info.simplex_iteration_count, 0)
        + max(info.ipm_iteration_count, 0)
    )
    sol = h.getSolution()
    x = np.asarray(sol.col_value) if kind == "optimal" else np.zeros(n)
    return SparseLPResult(
        x=x,
        objective=float(h.getObjectiveValue()) if kind == "optimal" else 0.0,
        status=kind,
        message=h.modelStatusToString(status),
        iterations=iterations,
        basis=h.getBasis() if kind == "optimal" else None,
    )


def solve_sparse_lp(
    cost: np.ndarray,
    a_eq: csc_matrix,
    b_eq: np.ndarray,
    a_ub: Optional[csc_matrix],
    b_ub: Optional[np.ndarray],
    warm_basis: object = None,
) -> SparseLPResult:
    """Minimise ``cost @ x`` s.t. equality/inequality rows, ``x >= 0``.

    With the HiGHS bindings available this solves cold starts via
    interior point (with crossover, matching scipy's ``highs-ipm``) and
    warm starts via simplex from the supplied basis; both fall back to a
    plain simplex run on non-infeasible failures.  Without the bindings
    it degrades to ``scipy.optimize.linprog`` (no warm starts).
    """
    from scipy.sparse import vstack

    if a_ub is not None and a_ub.shape[0] > 0:
        a = vstack([a_eq, a_ub]).tocsc()
        row_lower = np.concatenate(
            [b_eq, np.full(len(b_ub), -np.inf)]
        )
        row_upper = np.concatenate([b_eq, b_ub])
    else:
        a = a_eq.tocsc()
        row_lower = np.asarray(b_eq, dtype=float)
        row_upper = np.asarray(b_eq, dtype=float)

    if HAVE_HIGHS:
        try:
            result = _run_highs(
                cost, a, row_lower, row_upper, warm_basis, "ipm"
            )
            if result.status == "error":
                # Mirror scipy-path behaviour: retry with (cold) simplex.
                result = _run_highs(cost, a, row_lower, row_upper, None, None)
            return result
        except (AttributeError, TypeError):
            # The vendored bindings are private scipy API; if a scipy
            # upgrade drifts them (module imports but members renamed),
            # degrade to the public linprog path below instead of
            # crashing every solve.
            pass

    # Fallback: scipy linprog, IPM first then simplex — the historical
    # BlockLP behaviour.  No warm starts are possible on this path.
    from scipy.optimize import linprog

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=(0, None),
        method="highs-ipm",
    )
    if not result.success and result.status not in (2,):
        result = linprog(
            cost,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=(0, None),
            method="highs",
        )
    if result.success:
        status = "optimal"
    elif result.status == 2 or "infeasible" in str(result.message).lower():
        status = "infeasible"
    else:
        status = "error"
    return SparseLPResult(
        x=np.asarray(result.x) if result.success else np.zeros(len(cost)),
        objective=float(result.fun) if result.success else 0.0,
        status=status,
        message=str(result.message),
        iterations=int(getattr(result, "nit", 0) or 0),
        basis=None,
    )
