"""End-to-end CTMDP buffer sizing (the paper's full pipeline).

:class:`BufferSizer` wires everything together:

1. **Split** the bridged architecture into linear subsystems
   (:mod:`repro.core.splitting`), inserting a buffer at every used
   bridge direction.
2. **Model** each subsystem as a CTMDP: the exact joint occupancy model
   when the state space is small enough, the decomposed per-client model
   with a shared bus-time row otherwise (:mod:`repro.core.bus_model`).
3. **Solve one joint LP** over all subsystems — "all the equations ...
   in one go and not sequentially" — with a single shared buffer-space
   row tying the blocks to the scarce total budget
   (:class:`repro.core.lp.BlockLP`).
4. **Iterate the bridge-rate fixed point**: recompute carried rates into
   every bridge buffer from the blocking probabilities of the latest
   solution, rebuild, resolve, until rates converge.
5. **Translate** the final occupation measures into an integer
   allocation via the K-switching machinery
   (:mod:`repro.core.kswitching`).

The result plugs directly into the simulator:
``simulate(topology, result.allocation.as_capacities(), ...)`` — the
paper's "the system is resimulated with the new buffer lengths and the
losses are compared".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.arch.topology import Topology
from repro.core.bus_model import (
    SPACE,
    BusClient,
    build_client_chain_ctmdp,
    build_joint_bus_ctmdp,
    bus_time_coefficients,
    chain_client_marginal,
    joint_client_marginals,
    joint_state_space_size,
)
from repro.core.kswitching import ClientDemand, allocate_greedy
from repro.core.lp import BlockLP, LPSolution
from repro.core.splitting import (
    SplitSystem,
    Subsystem,
    bridge_arrival_rates,
    split,
)
from repro.errors import InfeasibleError, SolverError

#: Default joint-model state-count threshold; above it a subsystem's
#: per-client model depth shrinks (and below depth 2 it falls back to
#: decomposed per-client chains).  2000 keeps a five-client subsystem at
#: depth 3 (1024 states), which solves in well under a second via
#: interior point while losing almost nothing versus deeper lattices
#: (the tails are extrapolated geometrically either way).
DEFAULT_JOINT_STATE_LIMIT = 2000


@dataclass
class BufferAllocation:
    """An integer buffer allocation over all clients.

    ``sizes`` maps processor names and bridge-entry buffer names (the
    simulator's client vocabulary) to slot counts.
    """

    sizes: Dict[str, int]
    budget: int

    def __post_init__(self) -> None:
        for name, size in self.sizes.items():
            if size < 0:
                raise SolverError(
                    f"allocation gives {name!r} negative size {size}"
                )

    @property
    def total(self) -> int:
        """Total slots allocated."""
        return sum(self.sizes.values())

    def as_capacities(self) -> Dict[str, int]:
        """Plain dict for :func:`repro.sim.runner.simulate`."""
        return dict(self.sizes)

    def size_of(self, client: str) -> int:
        """Slots given to one client (0 if absent)."""
        return self.sizes.get(client, 0)


@dataclass
class SizingResult:
    """Everything the sizing pipeline produced.

    Attributes
    ----------
    allocation:
        The integer buffer allocation (sums exactly to the budget).
    expected_loss_rate:
        The joint LP objective at the converged fixed point: the
        model-predicted weighted loss rate per unit time.
    marginals:
        Per-client stationary queue-length marginals from the LP.
    blocking:
        Per-client full-buffer probabilities at the model capacity cap.
    fixed_point_iterations:
        Outer bridge-rate iterations performed.
    space_bound_used:
        The expected-space bound of the final LP (after any adaptive
        relaxation).
    lp_solution:
        Full LP solution (occupations, policies) of the final solve.
    split_system:
        The subsystem decomposition (with converged bridge rates).
    """

    allocation: BufferAllocation
    expected_loss_rate: float
    marginals: Dict[str, np.ndarray]
    blocking: Dict[str, float]
    fixed_point_iterations: int
    space_bound_used: float
    lp_solution: LPSolution
    split_system: SplitSystem

    def predicted_total_loss_rate(self) -> float:
        """End-to-end predicted loss rate from the flow-thinning view.

        Unlike :attr:`expected_loss_rate` (the joint LP objective, which
        evaluates losses at the *model* capacities), this accumulates each
        flow's loss across its hops using the fixed point's per-client
        blocking estimates — the quantity that is directly comparable
        across budgets and to simulation.
        """
        total = 0.0
        for flow_name, hops in self.split_system.flow_hops.items():
            rate = self.split_system.topology.flows[flow_name].rate
            surviving = rate
            for hop in hops:
                b = self.blocking.get(hop.client, 0.0)
                surviving *= 1.0 - min(max(b, 0.0), 1.0)
            total += rate - surviving
        return total


class BufferSizer:
    """Optimal buffer sizing via split subsystems and a joint LP.

    Parameters
    ----------
    total_budget:
        Total buffer slots to distribute over all processors and inserted
        bridge buffers.
    capacity_cap:
        Per-client upper bound defining the CTMDP lattices.  ``None``
        derives a heuristic from the budget and client count.
    space_fraction:
        The LP bounds *expected* occupied space by
        ``space_fraction * total_budget``; the default 1.0 mirrors the
        paper's hard budget (expected occupancy can never exceed the
        physical slots anyway).
    joint_state_limit:
        Subsystems whose joint lattice exceeds this use the decomposed
        model.
    max_fixed_point_iterations / fixed_point_tol / damping:
        Bridge-rate outer loop controls.
    min_size:
        Minimum slots per client (default 1).
    """

    def __init__(
        self,
        total_budget: int,
        capacity_cap: Optional[int] = None,
        space_fraction: float = 1.0,
        joint_state_limit: int = DEFAULT_JOINT_STATE_LIMIT,
        max_fixed_point_iterations: int = 6,
        fixed_point_tol: float = 1e-3,
        damping: float = 1.0,
        min_size: int = 1,
    ) -> None:
        if total_budget < 1:
            raise SolverError(
                f"total budget must be >= 1, got {total_budget}"
            )
        if not 0.0 < space_fraction <= 1.0:
            raise SolverError(
                f"space fraction must be in (0, 1], got {space_fraction}"
            )
        if not 0.0 < damping <= 1.0:
            raise SolverError(f"damping must be in (0, 1], got {damping}")
        self.total_budget = int(total_budget)
        self.capacity_cap = capacity_cap
        self.space_fraction = float(space_fraction)
        self.joint_state_limit = int(joint_state_limit)
        self.max_fixed_point_iterations = int(max_fixed_point_iterations)
        self.fixed_point_tol = float(fixed_point_tol)
        self.damping = float(damping)
        self.min_size = int(min_size)

    # ------------------------------------------------------------------

    def _derive_cap(self, topology: Topology) -> int:
        """Maximum model depth per client (upper bound; the per-subsystem
        lattice budget of :meth:`_model_cap` usually binds first)."""
        if self.capacity_cap is not None:
            if self.capacity_cap < 1:
                raise SolverError(
                    f"capacity cap must be >= 1, got {self.capacity_cap}"
                )
            return int(self.capacity_cap)
        probe = split(topology, 1)
        num_clients = len(probe.all_client_names())
        # Twice the fair share, clamped to something lattice-friendly.
        fair = max(2 * self.total_budget // max(num_clients, 1), 4)
        return int(min(fair, self.total_budget, 24))

    def _model_cap(self, num_clients: int, requested: int) -> Optional[int]:
        """Deepest per-client occupancy the joint lattice affords.

        Returns the largest ``c <= requested`` with
        ``(c + 1) ** num_clients <= joint_state_limit``, or ``None`` when
        even ``c = 2`` does not fit (the subsystem then falls back to the
        decomposed per-client model).
        """
        cap = min(
            requested,
            max(int(self.joint_state_limit ** (1.0 / num_clients)) - 1, 0),
        )
        while cap >= 2 and (cap + 1) ** num_clients > self.joint_state_limit:
            cap -= 1
        return cap if cap >= 2 else None

    def _build_blocks(
        self, split_system: SplitSystem, requested_cap: int
    ) -> Tuple[BlockLP, List[Tuple[Subsystem, str, List[BusClient]]]]:
        """One BlockLP with all subsystems; returns block bookkeeping.

        Each subsystem uses the **exact joint occupancy model** at the
        deepest per-client capacity its lattice budget affords (the
        shared-bus contention is what shapes queue tails, so the joint
        model is strongly preferred; its marginals are geometrically
        extrapolated past the model cap by :meth:`_extend_marginal`).
        Subsystems with too many clients for even a depth-2 lattice fall
        back to decomposed per-client chains with a shared bus-time row
        and a small holding cost that removes the parking degeneracy.

        Bookkeeping entries are ``(subsystem, kind, model_clients)`` with
        kind ``"joint"`` or ``"chain"``; ``model_clients`` carry the
        (possibly reduced) model capacities.
        """
        block_lp = BlockLP()
        bookkeeping: List[Tuple[Subsystem, str, List[BusClient]]] = []
        for sub in split_system.subsystems:
            if not sub.clients:
                # A cluster no flow touches (e.g. a redundant bridge path)
                # needs no buffers and contributes nothing to the LP.
                continue
            model_cap = self._model_cap(len(sub.clients), requested_cap)
            if model_cap is not None:
                model_clients = [
                    c.with_capacity(model_cap) for c in sub.clients
                ]
                model = build_joint_bus_ctmdp(model_clients)
                block_lp.add_block(model)
                bookkeeping.append((sub, "joint", model_clients))
            else:
                chain_cap = min(requested_cap, 30)
                model_clients = [
                    c.with_capacity(chain_cap) for c in sub.clients
                ]
                chain_models = []
                for client in model_clients:
                    holding = 1e-5 * (
                        client.loss_weight * client.arrival_rate + 1.0
                    )
                    model = build_client_chain_ctmdp(
                        client, holding_cost_rate=holding
                    )
                    block_lp.add_block(model)
                    chain_models.append(model)
                bookkeeping.append((sub, "chain", model_clients))
                # Shared bus-time row over just this subsystem's blocks.
                coefficients = [
                    {} for _ in range(block_lp.num_blocks - len(chain_models))
                ] + [bus_time_coefficients(m) for m in chain_models]
                block_lp.add_shared_constraint(
                    f"bus_time[{sub.index}]", coefficients, bound=1.0
                )
        return block_lp, bookkeeping

    @staticmethod
    def _extend_marginal(marginal: np.ndarray, length: int) -> np.ndarray:
        """Geometrically extrapolate a queue-length marginal.

        The joint model truncates each client at the model cap; beyond it
        the stationary law of a stable queue decays geometrically, so the
        tail is extended with the decay ratio observed at the top of the
        modelled range and renormalised.
        """
        m = np.clip(np.asarray(marginal, dtype=float), 0.0, None)
        if m.size >= length + 1:
            out = m[: length + 1]
            total = out.sum()
            return out / total if total > 0 else out
        if m.size >= 2 and m[-2] > 0:
            ratio = float(np.clip(m[-1] / m[-2], 0.0, 0.995))
        else:
            ratio = 0.0
        extra = length + 1 - m.size
        tail = m[-1] * ratio ** np.arange(1, extra + 1)
        out = np.concatenate([m, tail])
        total = out.sum()
        if total <= 0:
            raise SolverError("marginal extrapolation lost all mass")
        return out / total

    def _solve_with_adaptive_bound(
        self, split_system: SplitSystem, requested_cap: int
    ) -> Tuple[LPSolution, float, List[Tuple[Subsystem, str, List[BusClient]]]]:
        """Solve the joint LP, relaxing the space bound if infeasible.

        The expected-space bound can be infeasible when the budget is very
        tight relative to offered load (occupancy is forced by balance).
        The paper's experiments live in exactly that regime at budget 160,
        so rather than fail we geometrically relax the bound and record
        the value used.
        """
        bound = self.space_fraction * self.total_budget
        last_error: Optional[InfeasibleError] = None
        for _attempt in range(6):
            block_lp, bookkeeping = self._build_blocks(
                split_system, requested_cap
            )
            block_lp.add_shared_budget("budget", SPACE, bound=bound)
            try:
                return block_lp.solve(), bound, bookkeeping
            except InfeasibleError as exc:
                last_error = exc
                bound *= 1.5
        raise InfeasibleError(
            "joint LP remained infeasible after relaxing the space bound; "
            f"last error: {last_error}"
        )

    def _extract_marginals(
        self,
        solution: LPSolution,
        bookkeeping: List[Tuple[Subsystem, str, List[BusClient]]],
    ) -> Dict[str, np.ndarray]:
        """Per-client queue-length marginals from the block solutions."""
        marginals: Dict[str, np.ndarray] = {}
        block_index = 0
        for sub, kind, clients in bookkeeping:
            if kind == "joint":
                occ = solution.occupations[block_index]
                block_index += 1
                marginals.update(joint_client_marginals(clients, occ))
            else:
                for client in clients:
                    occ = solution.occupations[block_index]
                    block_index += 1
                    marginals[client.name] = chain_client_marginal(
                        client, occ
                    )
        return marginals

    # ------------------------------------------------------------------

    def size(self, topology: Topology) -> SizingResult:
        """Run the full pipeline on a topology.

        Raises
        ------
        InfeasibleError
            If the budget cannot give every client its minimum size, or
            the LP stays infeasible after adaptive relaxation.
        """
        cap = self._derive_cap(topology)
        split_system = split(topology, cap)
        num_clients = len(split_system.all_client_names())
        if self.total_budget < self.min_size * num_clients:
            raise InfeasibleError(
                f"budget {self.total_budget} cannot give {num_clients} "
                f"clients {self.min_size} slot(s) each"
            )

        # Fair-share size used to estimate blocking during the bridge
        # fixed point (the final integer sizes are not known yet).
        fair_share = max(self.total_budget // num_clients, 1)
        solution: Optional[LPSolution] = None
        bound_used = self.space_fraction * self.total_budget
        bookkeeping: List[Tuple[Subsystem, str, List[BusClient]]] = []
        marginals: Dict[str, np.ndarray] = {}
        blocking: Dict[str, float] = {}
        iterations = 0
        for iterations in range(1, self.max_fixed_point_iterations + 1):
            solution, bound_used, bookkeeping = (
                self._solve_with_adaptive_bound(split_system, cap)
            )
            marginals = {
                name: self._extend_marginal(marg, self.total_budget)
                for name, marg in self._extract_marginals(
                    solution, bookkeeping
                ).items()
            }
            blocking = {}
            for name, marg in marginals.items():
                k = min(fair_share, marg.size - 1)
                cdf = float(marg[: k + 1].sum())
                blocking[name] = float(marg[k]) / cdf if cdf > 0 else 1.0
            new_rates = bridge_arrival_rates(split_system, blocking)
            # Compare against the current bridge-client rates.
            max_delta = 0.0
            current: Dict[str, float] = {}
            for sub in split_system.subsystems:
                for name in sub.bridge_client_names:
                    current[name] = sub.client(name).arrival_rate
            for name, rate in new_rates.items():
                max_delta = max(max_delta, abs(rate - current.get(name, 0.0)))
            if max_delta < self.fixed_point_tol:
                break
            damped = {
                name: self.damping * rate
                + (1.0 - self.damping) * current.get(name, 0.0)
                for name, rate in new_rates.items()
            }
            split_system.subsystems = [
                sub.with_rates(damped) for sub in split_system.subsystems
            ]
        assert solution is not None  # loop runs at least once

        demands = []
        for sub in split_system.subsystems:
            for client in sub.clients:
                demands.append(
                    ClientDemand(
                        name=client.name,
                        marginal=marginals[client.name],
                        arrival_rate=max(client.arrival_rate, 1e-12),
                        loss_weight=client.loss_weight,
                        max_size=self.total_budget,
                    )
                )
        sizes = allocate_greedy(
            demands, self.total_budget, min_size=self.min_size
        )
        allocation = BufferAllocation(sizes=sizes, budget=self.total_budget)
        # Final blocking estimates at the *allocated* sizes (the fixed
        # point above used a fair-share probe size; the allocation is now
        # known, so report the consistent truncated-law blocking).
        final_blocking: Dict[str, float] = {}
        for name, marg in marginals.items():
            k = min(sizes.get(name, 1), marg.size - 1)
            cdf = float(marg[: k + 1].sum())
            final_blocking[name] = float(marg[k]) / cdf if cdf > 0 else 1.0
        return SizingResult(
            allocation=allocation,
            expected_loss_rate=solution.objective,
            marginals=marginals,
            blocking=final_blocking,
            fixed_point_iterations=iterations,
            space_bound_used=bound_used,
            lp_solution=solution,
            split_system=split_system,
        )
