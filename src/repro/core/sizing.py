"""End-to-end CTMDP buffer sizing (the paper's full pipeline).

:class:`BufferSizer` wires everything together:

1. **Split** the bridged architecture into linear subsystems
   (:mod:`repro.core.splitting`), inserting a buffer at every used
   bridge direction.
2. **Model** each subsystem as a CTMDP: the exact joint occupancy model
   when the state space is small enough, the decomposed per-client model
   with a shared bus-time row otherwise (:mod:`repro.core.bus_model`).
3. **Solve one joint LP** over all subsystems — "all the equations ...
   in one go and not sequentially" — with a single shared buffer-space
   row tying the blocks to the scarce total budget
   (:class:`repro.core.lp.BlockLP`).
4. **Iterate the bridge-rate fixed point**: recompute carried rates into
   every bridge buffer from the blocking probabilities of the latest
   solution, refresh, resolve, until rates converge.
5. **Translate** the final occupation measures into an integer
   allocation via the K-switching machinery
   (:mod:`repro.core.kswitching`).

By default the pipeline runs on the compiled kernel layer
(:mod:`repro.core.compiled`): each joint subsystem is built once as a
:class:`~repro.core.compiled.CompiledBusLattice`, the joint LP structure
is assembled once into a :class:`~repro.core.lp.BlockProgram`, and each
bridge-rate iteration only refreshes arrival-rate coefficients and
re-solves from the previous optimal basis.  ``use_compiled=False``
selects the original rebuild-everything reference path, which the
equivalence tests hold the fast path against.

The result plugs directly into the simulator:
``simulate(topology, result.allocation.as_capacities(), ...)`` — the
paper's "the system is resimulated with the new buffer lengths and the
losses are compared".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.arch.topology import Topology
from repro.core.bus_model import (
    BUS_TIME,
    SPACE,
    BusClient,
    build_client_chain_ctmdp,
    build_joint_bus_ctmdp,
    bus_time_coefficients,
    chain_client_marginal,
    joint_client_marginals,
    joint_state_space_size,
)
from repro.core.compiled import CompiledBusLattice, CompiledClientChain
from repro.core.kswitching import ClientDemand, allocate_greedy
from repro.core.lp import BlockLP, BlockProgram, LPSolution
from repro.core.splitting import (
    SplitSystem,
    Subsystem,
    bridge_arrival_rates,
    split,
)
from repro.errors import InfeasibleError, SolverError

#: Default joint-model state-count threshold; above it a subsystem's
#: per-client model depth shrinks (and below depth 2 it falls back to
#: decomposed per-client chains).  2000 keeps a five-client subsystem at
#: depth 3 (1024 states), which solves in well under a second via
#: interior point while losing almost nothing versus deeper lattices
#: (the tails are extrapolated geometrically either way).
DEFAULT_JOINT_STATE_LIMIT = 2000


@dataclass
class BufferAllocation:
    """An integer buffer allocation over all clients.

    ``sizes`` maps processor names and bridge-entry buffer names (the
    simulator's client vocabulary) to slot counts.
    """

    sizes: Dict[str, int]
    budget: int

    def __post_init__(self) -> None:
        for name, size in self.sizes.items():
            if size < 0:
                raise SolverError(
                    f"allocation gives {name!r} negative size {size}"
                )

    @property
    def total(self) -> int:
        """Total slots allocated."""
        return sum(self.sizes.values())

    def as_capacities(self) -> Dict[str, int]:
        """Plain dict for :func:`repro.sim.runner.simulate`."""
        return dict(self.sizes)

    def size_of(self, client: str) -> int:
        """Slots given to one client (0 if absent)."""
        return self.sizes.get(client, 0)


@dataclass
class WarmStartState:
    """Carry-over state between consecutive sizing runs.

    Produced by :meth:`BufferSizer.size_warm` and fed back into the next
    call of a budget sweep: ``bridge_rates`` are the converged carried
    rates of the bridge fixed point (a far better starting iterate for a
    nearby budget than the offered rates), and ``basis`` is the final
    optimal LP basis (reused only when the next program's
    ``structure_signature`` matches, i.e. fixed capacities across the
    sweep).  The state holds live backend objects and is deliberately
    **not** picklable/cacheable — it exists only to chain in-process
    solves.
    """

    bridge_rates: Dict[str, float] = field(default_factory=dict)
    basis: Optional[object] = None
    structure: Optional[Tuple[int, int, int]] = None


@dataclass
class SizingResult:
    """Everything the sizing pipeline produced.

    Attributes
    ----------
    allocation:
        The integer buffer allocation (sums exactly to the budget).
    expected_loss_rate:
        The joint LP objective at the converged fixed point: the
        model-predicted weighted loss rate per unit time.
    marginals:
        Per-client stationary queue-length marginals from the LP.
    blocking:
        Per-client full-buffer probabilities at the model capacity cap.
    fixed_point_iterations:
        Outer bridge-rate iterations performed.
    converged:
        Whether the bridge fixed point met ``fixed_point_tol`` (False
        when the loop exhausted ``max_fixed_point_iterations``).  A
        non-converged result depends on the starting iterate, so the
        runtime's warm-vs-cold equivalence only holds when this is True
        (the cache refuses to store non-converged results).
    space_bound_used:
        The expected-space bound of the final LP (after any adaptive
        relaxation).
    lp_solution:
        Full LP solution (occupations; policies only on the reference
        path) of the final solve.
    split_system:
        The subsystem decomposition (with converged bridge rates).
    """

    allocation: BufferAllocation
    expected_loss_rate: float
    marginals: Dict[str, np.ndarray]
    blocking: Dict[str, float]
    fixed_point_iterations: int
    space_bound_used: float
    lp_solution: LPSolution
    split_system: SplitSystem
    converged: bool = True

    def predicted_total_loss_rate(self) -> float:
        """End-to-end predicted loss rate from the flow-thinning view.

        Unlike :attr:`expected_loss_rate` (the joint LP objective, which
        evaluates losses at the *model* capacities), this accumulates each
        flow's loss across its hops using the fixed point's per-client
        blocking estimates — the quantity that is directly comparable
        across budgets and to simulation.
        """
        total = 0.0
        for flow_name, hops in self.split_system.flow_hops.items():
            rate = self.split_system.topology.flows[flow_name].rate
            surviving = rate
            for hop in hops:
                b = self.blocking.get(hop.client, 0.0)
                surviving *= 1.0 - min(max(b, 0.0), 1.0)
            total += rate - surviving
        return total


class _SizingProgram:
    """The compiled joint LP of one sizing run.

    Built once per :meth:`BufferSizer.size` call: joint subsystems become
    refreshable :class:`CompiledBusLattice` blocks, oversized subsystems
    become refreshable per-client :class:`CompiledClientChain` blocks,
    and the shared budget/bus-time rows are vector rows re-read from the
    blocks on every solve.  The bridge-rate fixed point then only calls
    :meth:`refresh` + :meth:`solve_adaptive` — no block is ever rebuilt
    unless its zero/positive rate pattern changes — warm-starting each
    LP from the previous optimal basis.
    """

    def __init__(
        self, sizer: "BufferSizer", split_system: SplitSystem, cap: int
    ) -> None:
        self.sizer = sizer
        self.cap = cap
        # Entries: (subsystem, kind, model_clients, block_indices).
        self.entries: List[Tuple[Subsystem, str, List[BusClient], List[int]]] = []
        providers: List[object] = []
        bus_time_rows: List[Tuple[int, List[int]]] = []
        for sub in split_system.subsystems:
            if not sub.clients:
                # A cluster no flow touches needs no buffers and
                # contributes nothing to the LP.
                continue
            model_cap = sizer._model_cap(len(sub.clients), cap)
            if model_cap is not None:
                model_clients = [
                    c.with_capacity(model_cap) for c in sub.clients
                ]
                block = len(providers)
                providers.append(CompiledBusLattice(model_clients))
                self.entries.append((sub, "joint", model_clients, [block]))
            else:
                chain_cap = min(cap, 30)
                model_clients = [
                    c.with_capacity(chain_cap) for c in sub.clients
                ]
                blocks = []
                for client in model_clients:
                    blocks.append(len(providers))
                    providers.append(self._chain_provider(client))
                self.entries.append((sub, "chain", model_clients, blocks))
                bus_time_rows.append((sub.index, blocks))
        self.program = BlockProgram(providers, [1.0] * len(providers))
        for sub_index, blocks in bus_time_rows:
            names: List[Optional[str]] = [None] * len(providers)
            for b in blocks:
                names[b] = BUS_TIME
            self.program.add_vector_row(
                f"bus_time[{sub_index}]", names, 1.0
            )
        self.program.add_vector_row(
            "budget", [SPACE] * len(providers), 0.0
        )

    @staticmethod
    def _chain_holding(client: BusClient) -> float:
        """The degeneracy-breaking holding cost of one chain block.

        Single source of truth: the reference path
        (:meth:`BufferSizer._build_blocks`) evaluates the same function,
        so the compiled chain coefficients match it bitwise by
        construction.
        """
        return 1e-5 * (client.loss_weight * client.arrival_rate + 1.0)

    @classmethod
    def _chain_provider(cls, client: BusClient) -> CompiledClientChain:
        return CompiledClientChain(
            client, holding_cost_rate=cls._chain_holding(client)
        )

    # ------------------------------------------------------------------

    def refresh(self, split_system: SplitSystem) -> None:
        """Pull the current (damped) arrival rates into every block."""
        sub_by_index = {sub.index: sub for sub in split_system.subsystems}
        for e, (old_sub, kind, old_clients, blocks) in enumerate(self.entries):
            sub = sub_by_index[old_sub.index]
            rates = {c.name: c.arrival_rate for c in sub.clients}
            if kind == "joint":
                model_clients = [
                    old.with_arrival_rate(rates.get(old.name, old.arrival_rate))
                    for old in old_clients
                ]
                lattice = self.program.providers[blocks[0]]
                if not lattice.refresh(rates):
                    # The zero/positive rate pattern changed — rebuild.
                    lattice = CompiledBusLattice(model_clients)
                    self.program.providers[blocks[0]] = lattice
                self.entries[e] = (sub, kind, model_clients, blocks)
            else:
                model_clients = [
                    old.with_arrival_rate(rates.get(old.name, old.arrival_rate))
                    for old in old_clients
                ]
                for client, b in zip(model_clients, blocks):
                    chain = self.program.providers[b]
                    if not chain.refresh(
                        client.arrival_rate, self._chain_holding(client)
                    ):
                        # Zero/positive rate pattern changed — rebuild.
                        self.program.providers[b] = self._chain_provider(
                            client
                        )
                self.entries[e] = (sub, kind, model_clients, blocks)

    def solve_adaptive(
        self, bound: float
    ) -> Tuple[np.ndarray, Dict[object, float], float, int]:
        """Solve, geometrically relaxing the space bound if infeasible.

        The expected-space bound can be infeasible when the budget is
        very tight relative to offered load (occupancy is forced by
        balance).  The paper's experiments live in exactly that regime at
        budget 160, so rather than fail we relax the bound and record the
        value used.
        """
        last_error: Optional[InfeasibleError] = None
        for _attempt in range(6):
            try:
                result, achieved = self.program.solve(
                    bound_overrides={"budget": bound}
                )
                return (
                    np.clip(result.x, 0.0, None),
                    achieved,
                    bound,
                    result.iterations,
                )
            except InfeasibleError as exc:
                last_error = exc
                bound *= 1.5
        raise InfeasibleError(
            "joint LP remained infeasible after relaxing the space bound; "
            f"last error: {last_error}"
        )

    # ------------------------------------------------------------------

    def marginals(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Per-client queue-length marginals of an occupation measure."""
        marginals: Dict[str, np.ndarray] = {}
        offsets = self.program.pair_offsets
        for _sub, kind, clients, blocks in self.entries:
            if kind == "joint":
                lattice = self.program.providers[blocks[0]]
                xb = x[offsets[blocks[0]]:offsets[blocks[0] + 1]]
                marginals.update(lattice.client_marginals(xb))
            else:
                for client, b in zip(clients, blocks):
                    comp = self.program.providers[b]
                    xb = x[offsets[b]:offsets[b + 1]]
                    p = np.bincount(
                        comp.pair_state,
                        weights=xb,
                        minlength=client.capacity + 1,
                    )
                    total = p.sum()
                    if total <= 0:
                        raise SolverError(
                            "occupation measure has no mass for client "
                            f"{client.name!r}"
                        )
                    marginals[client.name] = p / total
        return marginals

    def lp_solution(
        self,
        x: np.ndarray,
        achieved: Dict[object, float],
        iterations: int,
    ) -> LPSolution:
        """Package the final raw solution as an :class:`LPSolution`.

        Occupation dicts are materialised here once (they are only
        needed for the result object, not for the fixed point); policy
        extraction needs CTMDP objects the compiled path never builds,
        so ``policies`` is empty.
        """
        offsets = self.program.pair_offsets
        occupations = []
        block_costs = []
        objective = 0.0
        for b, provider in enumerate(self.program.providers):
            xb = x[offsets[b]:offsets[b + 1]]
            occupations.append(
                {pair: float(xb[k]) for k, pair in enumerate(provider.pairs)}
            )
            cost = float(xb @ provider.cost_rates)
            block_costs.append(cost)
            objective += cost
        return LPSolution(
            objective=objective,
            occupations=occupations,
            policies=[],
            block_costs=block_costs,
            constraint_values=achieved,
            iterations=iterations,
        )


class BufferSizer:
    """Optimal buffer sizing via split subsystems and a joint LP.

    Parameters
    ----------
    total_budget:
        Total buffer slots to distribute over all processors and inserted
        bridge buffers.
    capacity_cap:
        Per-client upper bound defining the CTMDP lattices.  ``None``
        derives a heuristic from the budget and client count.
    space_fraction:
        The LP bounds *expected* occupied space by
        ``space_fraction * total_budget``; the default 1.0 mirrors the
        paper's hard budget (expected occupancy can never exceed the
        physical slots anyway).
    joint_state_limit:
        Subsystems whose joint lattice exceeds this use the decomposed
        model.
    max_fixed_point_iterations / fixed_point_tol / damping:
        Bridge-rate outer loop controls.
    min_size:
        Minimum slots per client (default 1).
    use_compiled:
        Run the compiled/warm-started solver path (default).  ``False``
        selects the original rebuild-every-iteration reference path.
    """

    def __init__(
        self,
        total_budget: int,
        capacity_cap: Optional[int] = None,
        space_fraction: float = 1.0,
        joint_state_limit: int = DEFAULT_JOINT_STATE_LIMIT,
        max_fixed_point_iterations: int = 6,
        fixed_point_tol: float = 1e-3,
        damping: float = 1.0,
        min_size: int = 1,
        use_compiled: bool = True,
    ) -> None:
        if total_budget < 1:
            raise SolverError(
                f"total budget must be >= 1, got {total_budget}"
            )
        if not 0.0 < space_fraction <= 1.0:
            raise SolverError(
                f"space fraction must be in (0, 1], got {space_fraction}"
            )
        if not 0.0 < damping <= 1.0:
            raise SolverError(f"damping must be in (0, 1], got {damping}")
        self.total_budget = int(total_budget)
        self.capacity_cap = capacity_cap
        self.space_fraction = float(space_fraction)
        self.joint_state_limit = int(joint_state_limit)
        self.max_fixed_point_iterations = int(max_fixed_point_iterations)
        self.fixed_point_tol = float(fixed_point_tol)
        self.damping = float(damping)
        self.min_size = int(min_size)
        self.use_compiled = bool(use_compiled)

    # ------------------------------------------------------------------

    def _derive_cap(self, topology: Topology) -> int:
        """Maximum model depth per client (upper bound; the per-subsystem
        lattice budget of :meth:`_model_cap` usually binds first)."""
        if self.capacity_cap is not None:
            if self.capacity_cap < 1:
                raise SolverError(
                    f"capacity cap must be >= 1, got {self.capacity_cap}"
                )
            return int(self.capacity_cap)
        probe = split(topology, 1)
        num_clients = len(probe.all_client_names())
        # Twice the fair share, clamped to something lattice-friendly.
        fair = max(2 * self.total_budget // max(num_clients, 1), 4)
        return int(min(fair, self.total_budget, 24))

    def _model_cap(self, num_clients: int, requested: int) -> Optional[int]:
        """Deepest per-client occupancy the joint lattice affords.

        Returns the largest ``c <= requested`` with
        ``(c + 1) ** num_clients <= joint_state_limit``, or ``None`` when
        even ``c = 2`` does not fit (the subsystem then falls back to the
        decomposed per-client model).
        """
        cap = min(
            requested,
            max(int(self.joint_state_limit ** (1.0 / num_clients)) - 1, 0),
        )
        while cap >= 2 and (cap + 1) ** num_clients > self.joint_state_limit:
            cap -= 1
        return cap if cap >= 2 else None

    def _build_blocks(
        self, split_system: SplitSystem, requested_cap: int
    ) -> Tuple[BlockLP, List[Tuple[Subsystem, str, List[BusClient]]]]:
        """One BlockLP with all subsystems; returns block bookkeeping.

        Reference-path equivalent of :class:`_SizingProgram` — rebuilt
        from scratch on every call.  Each subsystem uses the **exact
        joint occupancy model** at the deepest per-client capacity its
        lattice budget affords (the shared-bus contention is what shapes
        queue tails, so the joint model is strongly preferred; its
        marginals are geometrically extrapolated past the model cap by
        :meth:`_extend_marginal`).  Subsystems with too many clients for
        even a depth-2 lattice fall back to decomposed per-client chains
        with a shared bus-time row and a small holding cost that removes
        the parking degeneracy.

        Bookkeeping entries are ``(subsystem, kind, model_clients)`` with
        kind ``"joint"`` or ``"chain"``; ``model_clients`` carry the
        (possibly reduced) model capacities.
        """
        block_lp = BlockLP()
        bookkeeping: List[Tuple[Subsystem, str, List[BusClient]]] = []
        for sub in split_system.subsystems:
            if not sub.clients:
                # A cluster no flow touches (e.g. a redundant bridge path)
                # needs no buffers and contributes nothing to the LP.
                continue
            model_cap = self._model_cap(len(sub.clients), requested_cap)
            if model_cap is not None:
                model_clients = [
                    c.with_capacity(model_cap) for c in sub.clients
                ]
                model = build_joint_bus_ctmdp(model_clients)
                block_lp.add_block(model)
                bookkeeping.append((sub, "joint", model_clients))
            else:
                chain_cap = min(requested_cap, 30)
                model_clients = [
                    c.with_capacity(chain_cap) for c in sub.clients
                ]
                chain_models = []
                for client in model_clients:
                    model = build_client_chain_ctmdp(
                        client,
                        holding_cost_rate=_SizingProgram._chain_holding(
                            client
                        ),
                    )
                    block_lp.add_block(model)
                    chain_models.append(model)
                bookkeeping.append((sub, "chain", model_clients))
                # Shared bus-time row over just this subsystem's blocks.
                coefficients = [
                    {} for _ in range(block_lp.num_blocks - len(chain_models))
                ] + [bus_time_coefficients(m) for m in chain_models]
                block_lp.add_shared_constraint(
                    f"bus_time[{sub.index}]", coefficients, bound=1.0
                )
        return block_lp, bookkeeping

    @staticmethod
    def _extend_marginal(marginal: np.ndarray, length: int) -> np.ndarray:
        """Geometrically extrapolate a queue-length marginal.

        The joint model truncates each client at the model cap; beyond it
        the stationary law of a stable queue decays geometrically, so the
        tail is extended with the decay ratio observed at the top of the
        modelled range and renormalised.
        """
        m = np.clip(np.asarray(marginal, dtype=float), 0.0, None)
        if m.size >= length + 1:
            out = m[: length + 1]
            total = out.sum()
            return out / total if total > 0 else out
        if m.size >= 2 and m[-2] > 0:
            ratio = float(np.clip(m[-1] / m[-2], 0.0, 0.995))
        else:
            ratio = 0.0
        extra = length + 1 - m.size
        tail = m[-1] * ratio ** np.arange(1, extra + 1)
        out = np.concatenate([m, tail])
        total = out.sum()
        if total <= 0:
            raise SolverError("marginal extrapolation lost all mass")
        return out / total

    def _solve_with_adaptive_bound(
        self, split_system: SplitSystem, requested_cap: int
    ) -> Tuple[LPSolution, float, List[Tuple[Subsystem, str, List[BusClient]]]]:
        """Solve the joint LP, relaxing the space bound if infeasible.

        Reference-path counterpart of
        :meth:`_SizingProgram.solve_adaptive` — rebuilds every CTMDP and
        the whole LP on each attempt.
        """
        bound = self.space_fraction * self.total_budget
        last_error: Optional[InfeasibleError] = None
        for _attempt in range(6):
            block_lp, bookkeeping = self._build_blocks(
                split_system, requested_cap
            )
            block_lp.add_shared_budget("budget", SPACE, bound=bound)
            try:
                return block_lp.solve(), bound, bookkeeping
            except InfeasibleError as exc:
                last_error = exc
                bound *= 1.5
        raise InfeasibleError(
            "joint LP remained infeasible after relaxing the space bound; "
            f"last error: {last_error}"
        )

    def _extract_marginals(
        self,
        solution: LPSolution,
        bookkeeping: List[Tuple[Subsystem, str, List[BusClient]]],
    ) -> Dict[str, np.ndarray]:
        """Per-client queue-length marginals from the block solutions."""
        marginals: Dict[str, np.ndarray] = {}
        block_index = 0
        for sub, kind, clients in bookkeeping:
            if kind == "joint":
                occ = solution.occupations[block_index]
                block_index += 1
                marginals.update(joint_client_marginals(clients, occ))
            else:
                for client in clients:
                    occ = solution.occupations[block_index]
                    block_index += 1
                    marginals[client.name] = chain_client_marginal(
                        client, occ
                    )
        return marginals

    # ------------------------------------------------------------------

    def size(
        self,
        topology: Topology,
        warm_start: Optional[WarmStartState] = None,
    ) -> SizingResult:
        """Run the full pipeline on a topology.

        ``warm_start`` optionally seeds the bridge fixed point (and the
        LP basis, when structurally compatible) from a previous run —
        see :meth:`size_warm`, which also returns the carry-over state.

        Raises
        ------
        InfeasibleError
            If the budget cannot give every client its minimum size, or
            the LP stays infeasible after adaptive relaxation.
        """
        result, _state = self.size_warm(topology, warm_start)
        return result

    def size_warm(
        self,
        topology: Topology,
        warm_start: Optional[WarmStartState] = None,
    ) -> Tuple[SizingResult, WarmStartState]:
        """:meth:`size` plus the state that warm-starts the next run.

        The returned :class:`WarmStartState` carries the converged
        bridge rates and (on the compiled path) the final optimal LP
        basis.  Feeding it into the next ``size_warm`` call of a budget
        sweep starts that run's fixed point at the previous converged
        iterate, which typically saves most outer iterations; the final
        :class:`SizingResult` is the same fixed point either way (the
        outer loop iterates to the same tolerance from any start).
        """
        cap = self._derive_cap(topology)
        split_system = split(topology, cap)
        num_clients = len(split_system.all_client_names())
        if self.total_budget < self.min_size * num_clients:
            raise InfeasibleError(
                f"budget {self.total_budget} cannot give {num_clients} "
                f"clients {self.min_size} slot(s) each"
            )
        if warm_start is not None and warm_start.bridge_rates:
            known = set()
            for sub in split_system.subsystems:
                known.update(sub.bridge_client_names)
            rates = {
                name: rate
                for name, rate in warm_start.bridge_rates.items()
                if name in known
            }
            if rates:
                split_system.subsystems = [
                    sub.with_rates(rates) for sub in split_system.subsystems
                ]
        if self.use_compiled:
            return self._size_compiled(
                split_system, cap, num_clients, warm_start
            )
        return self._size_reference(split_system, cap, num_clients)

    @staticmethod
    def _bridge_rates_of(split_system: SplitSystem) -> Dict[str, float]:
        """Current bridge-entry arrival rates (the fixed-point iterate)."""
        rates: Dict[str, float] = {}
        for sub in split_system.subsystems:
            for name in sub.bridge_client_names:
                rates[name] = sub.client(name).arrival_rate
        return rates

    def _fixed_point_step(
        self,
        split_system: SplitSystem,
        marginals: Dict[str, np.ndarray],
        fair_share: int,
    ) -> Tuple[Dict[str, float], Dict[str, float], float]:
        """One bridge-rate update: blocking, damped rates, max delta."""
        blocking: Dict[str, float] = {}
        for name, marg in marginals.items():
            k = min(fair_share, marg.size - 1)
            cdf = float(marg[: k + 1].sum())
            blocking[name] = float(marg[k]) / cdf if cdf > 0 else 1.0
        new_rates = bridge_arrival_rates(split_system, blocking)
        max_delta = 0.0
        current: Dict[str, float] = {}
        for sub in split_system.subsystems:
            for name in sub.bridge_client_names:
                current[name] = sub.client(name).arrival_rate
        for name, rate in new_rates.items():
            max_delta = max(max_delta, abs(rate - current.get(name, 0.0)))
        damped = {
            name: self.damping * rate
            + (1.0 - self.damping) * current.get(name, 0.0)
            for name, rate in new_rates.items()
        }
        return blocking, damped, max_delta

    def _size_compiled(
        self,
        split_system: SplitSystem,
        cap: int,
        num_clients: int,
        warm_start: Optional[WarmStartState] = None,
    ) -> Tuple[SizingResult, WarmStartState]:
        """Fixed point on the compiled, warm-started program."""
        program = _SizingProgram(self, split_system, cap)
        if (
            warm_start is not None
            and warm_start.basis is not None
            and warm_start.structure == program.program.structure_signature
        ):
            program.program.seed_basis(warm_start.basis)
        fair_share = max(self.total_budget // num_clients, 1)
        initial_bound = self.space_fraction * self.total_budget
        x: Optional[np.ndarray] = None
        achieved: Dict[object, float] = {}
        bound_used = initial_bound
        lp_iterations = 0
        marginals: Dict[str, np.ndarray] = {}
        iterations = 0
        converged = False
        with obs.span("solver.fixed_point") as fp_span:
            fp_span.set("path", "compiled")
            for iterations in range(1, self.max_fixed_point_iterations + 1):
                with obs.span("solver.lp_solve") as lp_span:
                    lp_span.set("iteration", iterations)
                    (
                        x,
                        achieved,
                        bound_used,
                        lp_iterations,
                    ) = program.solve_adaptive(initial_bound)
                obs.counter("solver.lp_solves").inc()
                marginals = {
                    name: self._extend_marginal(marg, self.total_budget)
                    for name, marg in program.marginals(x).items()
                }
                _blocking, damped, max_delta = self._fixed_point_step(
                    split_system, marginals, fair_share
                )
                if max_delta < self.fixed_point_tol:
                    converged = True
                    break
                split_system.subsystems = [
                    sub.with_rates(damped) for sub in split_system.subsystems
                ]
                # Refresh only when another solve will happen:
                # lp_solution below prices x with the providers' current
                # cost vectors, which must stay the ones x was solved
                # against.
                if iterations < self.max_fixed_point_iterations:
                    program.refresh(split_system)
            fp_span.set("iterations", iterations)
            fp_span.set("converged", converged)
        obs.histogram("solver.fixed_point_iterations").observe(iterations)
        assert x is not None  # loop runs at least once
        solution = program.lp_solution(x, achieved, lp_iterations)
        state = WarmStartState(
            bridge_rates=self._bridge_rates_of(split_system),
            basis=program.program.last_basis,
            structure=program.program.structure_signature,
        )
        return (
            self._finalise(
                split_system,
                solution,
                marginals,
                iterations,
                bound_used,
                converged,
            ),
            state,
        )

    def _size_reference(
        self, split_system: SplitSystem, cap: int, num_clients: int
    ) -> Tuple[SizingResult, WarmStartState]:
        """Original rebuild-every-iteration path (equivalence reference)."""
        fair_share = max(self.total_budget // num_clients, 1)
        solution: Optional[LPSolution] = None
        bound_used = self.space_fraction * self.total_budget
        marginals: Dict[str, np.ndarray] = {}
        iterations = 0
        converged = False
        with obs.span("solver.fixed_point") as fp_span:
            fp_span.set("path", "reference")
            for iterations in range(1, self.max_fixed_point_iterations + 1):
                with obs.span("solver.lp_solve") as lp_span:
                    lp_span.set("iteration", iterations)
                    solution, bound_used, bookkeeping = (
                        self._solve_with_adaptive_bound(split_system, cap)
                    )
                obs.counter("solver.lp_solves").inc()
                marginals = {
                    name: self._extend_marginal(marg, self.total_budget)
                    for name, marg in self._extract_marginals(
                        solution, bookkeeping
                    ).items()
                }
                _blocking, damped, max_delta = self._fixed_point_step(
                    split_system, marginals, fair_share
                )
                if max_delta < self.fixed_point_tol:
                    converged = True
                    break
                split_system.subsystems = [
                    sub.with_rates(damped) for sub in split_system.subsystems
                ]
            fp_span.set("iterations", iterations)
            fp_span.set("converged", converged)
        obs.histogram("solver.fixed_point_iterations").observe(iterations)
        assert solution is not None  # loop runs at least once
        state = WarmStartState(
            bridge_rates=self._bridge_rates_of(split_system)
        )
        return (
            self._finalise(
                split_system,
                solution,
                marginals,
                iterations,
                bound_used,
                converged,
            ),
            state,
        )

    def _finalise(
        self,
        split_system: SplitSystem,
        solution: LPSolution,
        marginals: Dict[str, np.ndarray],
        iterations: int,
        bound_used: float,
        converged: bool,
    ) -> SizingResult:
        """Translate the converged LP solution into the integer result."""
        demands = []
        for sub in split_system.subsystems:
            for client in sub.clients:
                demands.append(
                    ClientDemand(
                        name=client.name,
                        marginal=marginals[client.name],
                        arrival_rate=max(client.arrival_rate, 1e-12),
                        loss_weight=client.loss_weight,
                        max_size=self.total_budget,
                    )
                )
        sizes = allocate_greedy(
            demands, self.total_budget, min_size=self.min_size
        )
        allocation = BufferAllocation(sizes=sizes, budget=self.total_budget)
        # Final blocking estimates at the *allocated* sizes (the fixed
        # point above used a fair-share probe size; the allocation is now
        # known, so report the consistent truncated-law blocking).
        final_blocking: Dict[str, float] = {}
        for name, marg in marginals.items():
            k = min(sizes.get(name, 1), marg.size - 1)
            cdf = float(marg[: k + 1].sum())
            final_blocking[name] = float(marg[k]) / cdf if cdf > 0 else 1.0
        return SizingResult(
            allocation=allocation,
            expected_loss_rate=solution.objective,
            marginals=marginals,
            blocking=final_blocking,
            fixed_point_iterations=iterations,
            space_bound_used=bound_used,
            lp_solution=solution,
            split_system=split_system,
            converged=converged,
        )
