"""The paper's contribution: CTMDP-based buffer insertion and sizing.

Layering (bottom up):

* :mod:`repro.core.ctmdp` / :mod:`repro.core.policy` — the CTMDP IR and
  stationary randomised policies.
* :mod:`repro.core.lp` — the occupation-measure LP (Feinberg 2002) and
  the multi-block joint LP used after splitting.
* :mod:`repro.core.dp` — value/policy iteration cross-checks.
* :mod:`repro.core.bus_model` — bus + finite-buffer clients as CTMDPs
  (exact joint and decomposed forms).
* :mod:`repro.core.splitting` — bridge splitting into linear subsystems.
* :mod:`repro.core.quadratic` — the naive coupled formulation (the
  paper's negative result, kept as an ablation baseline).
* :mod:`repro.core.kswitching` — occupation measures to integer buffer
  sizes.
* :mod:`repro.core.sizing` — the end-to-end :class:`BufferSizer`.
"""

from repro.core.bus_model import (
    BUS_TIME,
    IDLE,
    SPACE,
    BusClient,
    build_client_chain_ctmdp,
    build_joint_bus_ctmdp,
)
from repro.core.ctmdp import CTMDP
from repro.core.dp import policy_iteration, relative_value_iteration
from repro.core.lagrangian import DualSolution, solve_constrained_dual
from repro.core.sensitivity import (
    ClientSensitivity,
    client_sensitivities,
    robustness_sweep,
)
from repro.core.transient import (
    time_to_steady_state,
    transient_loss_profile,
)
from repro.core.kswitching import (
    ClientDemand,
    SwitchingMixture,
    allocate_greedy,
    switching_mixture,
)
from repro.core.lp import AverageCostLP, BlockLP, ConstraintSpec, LPSolution
from repro.core.policy import StationaryPolicy, policy_from_occupation_measure
from repro.core.quadratic import QuadraticCoupledSizer, QuadraticDiagnostics
from repro.core.sizing import BufferAllocation, BufferSizer, SizingResult
from repro.core.splitting import (
    SplitSystem,
    Subsystem,
    bridge_arrival_rates,
    quadratic_coupling_count,
    split,
)

__all__ = [
    "AverageCostLP",
    "BUS_TIME",
    "BlockLP",
    "BufferAllocation",
    "BufferSizer",
    "BusClient",
    "CTMDP",
    "ClientDemand",
    "ClientSensitivity",
    "ConstraintSpec",
    "DualSolution",
    "IDLE",
    "LPSolution",
    "QuadraticCoupledSizer",
    "QuadraticDiagnostics",
    "SPACE",
    "SizingResult",
    "SplitSystem",
    "StationaryPolicy",
    "Subsystem",
    "SwitchingMixture",
    "allocate_greedy",
    "bridge_arrival_rates",
    "build_client_chain_ctmdp",
    "build_joint_bus_ctmdp",
    "client_sensitivities",
    "policy_from_occupation_measure",
    "policy_iteration",
    "quadratic_coupling_count",
    "relative_value_iteration",
    "robustness_sweep",
    "solve_constrained_dual",
    "split",
    "switching_mixture",
    "time_to_steady_state",
    "transient_loss_profile",
]
