"""Finite continuous-time Markov decision processes (CTMDPs).

A CTMDP extends a CTMC with a decision maker: in every state the
controller picks an action, and the chosen action determines both the
outgoing transition rates and the instantaneous cost *rate* accrued while
the process sits in that state.  For the paper's buffer-sizing problem the
controller is the **bus arbiter**, the state is the vector of buffer
occupancies, the cost rate is the weighted packet-loss rate, and the
constraint cost rates are the amounts of buffer space occupied.

The class here is a plain container with validation and uniformization;
solvers live in :mod:`repro.core.lp` (occupation-measure linear program,
the paper's method via Feinberg 2002) and :mod:`repro.core.dp` (relative
value iteration / policy iteration cross-checks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelError

State = Hashable
Action = Hashable


@dataclass(frozen=True)
class Transition:
    """One rated transition ``state --action--> target`` at ``rate``."""

    target: State
    rate: float


class CTMDP:
    """A finite CTMDP assembled state by state.

    Use :meth:`add_state` then :meth:`add_action`; finish with
    :meth:`validate` (called implicitly by the solvers).

    Notes
    -----
    * Cost entries are *rates* (cost per unit time), matching the
      average-cost-per-unit-time criterion of Feinberg 2002.
    * Self-loops are allowed in the input for modelling convenience (e.g.
      "an arrival hits a full buffer and is dropped") but carry no
      probabilistic meaning for a CTMC; they are discarded from the
      generator while their cost contribution must be encoded in the cost
      rate by the model builder.
    """

    def __init__(self) -> None:
        self._states: List[State] = []
        self._state_index: Dict[State, int] = {}
        self._actions: Dict[State, List[Action]] = {}
        self._transitions: Dict[Tuple[State, Action], List[Transition]] = {}
        self._cost_rates: Dict[Tuple[State, Action], float] = {}
        self._constraint_rates: Dict[str, Dict[Tuple[State, Action], float]] = {}
        self._validated = False
        # Derived caches, invalidated whenever an action is added.
        self._exit_rates: Dict[Tuple[State, Action], float] = {}
        self._max_exit: Optional[float] = None
        self._pairs_cache: Optional[List[Tuple[State, Action]]] = None
        self._compiled = None

    def _invalidate_caches(self) -> None:
        self._validated = False
        self._max_exit = None
        self._pairs_cache = None
        self._compiled = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_state(self, state: State) -> None:
        """Register a state.  Idempotent for repeated additions."""
        if state in self._state_index:
            return
        self._state_index[state] = len(self._states)
        self._states.append(state)
        self._actions[state] = []
        self._invalidate_caches()

    def add_action(
        self,
        state: State,
        action: Action,
        transitions: Sequence[Tuple[State, float]],
        cost_rate: float = 0.0,
        constraint_rates: Optional[Dict[str, float]] = None,
    ) -> None:
        """Attach an action to a state.

        Parameters
        ----------
        state:
            The source state (auto-registered if new).
        action:
            Action label, unique within the state.
        transitions:
            Sequence of ``(target_state, rate)`` pairs with ``rate >= 0``.
            Targets are auto-registered.  Self-loops are dropped.
        cost_rate:
            Cost accrued per unit time while in ``state`` under ``action``.
        constraint_rates:
            Optional named constraint cost rates (e.g. ``{"space": 3.0}``).
        """
        self.add_state(state)
        if action in self._actions[state]:
            raise ModelError(
                f"duplicate action {action!r} in state {state!r}"
            )
        cleaned: List[Transition] = []
        for target, rate in transitions:
            if rate < 0:
                raise ModelError(
                    f"negative rate {rate} on {state!r} --{action!r}--> {target!r}"
                )
            self.add_state(target)
            if target == state or rate == 0.0:
                continue
            cleaned.append(Transition(target, float(rate)))
        self._actions[state].append(action)
        self._transitions[(state, action)] = cleaned
        self._cost_rates[(state, action)] = float(cost_rate)
        for name, value in (constraint_rates or {}).items():
            self._constraint_rates.setdefault(name, {})[(state, action)] = float(
                value
            )
        exit_rate = 0.0
        for t in cleaned:
            exit_rate += t.rate
        self._exit_rates[(state, action)] = exit_rate
        self._invalidate_caches()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def states(self) -> List[State]:
        """All states in insertion order."""
        return list(self._states)

    @property
    def num_states(self) -> int:
        """Number of states."""
        return len(self._states)

    @property
    def num_state_actions(self) -> int:
        """Total number of (state, action) pairs."""
        return len(self._cost_rates)

    @property
    def constraint_names(self) -> List[str]:
        """Names of all constraint cost vectors that appear anywhere."""
        return sorted(self._constraint_rates)

    def state_index(self, state: State) -> int:
        """Dense index of a state."""
        try:
            return self._state_index[state]
        except KeyError:
            raise ModelError(f"unknown state {state!r}") from None

    def actions(self, state: State) -> List[Action]:
        """Actions available in a state."""
        if state not in self._state_index:
            raise ModelError(f"unknown state {state!r}")
        return list(self._actions[state])

    def transitions(self, state: State, action: Action) -> List[Transition]:
        """Rated transitions for a (state, action) pair."""
        key = (state, action)
        if key not in self._transitions:
            raise ModelError(f"unknown state-action {key!r}")
        return list(self._transitions[key])

    def cost_rate(self, state: State, action: Action) -> float:
        """Cost rate of a (state, action) pair."""
        key = (state, action)
        if key not in self._cost_rates:
            raise ModelError(f"unknown state-action {key!r}")
        return self._cost_rates[key]

    def constraint_rate(self, name: str, state: State, action: Action) -> float:
        """Named constraint cost rate; zero when unset."""
        return self._constraint_rates.get(name, {}).get((state, action), 0.0)

    def exit_rate(self, state: State, action: Action) -> float:
        """Total departure rate of a (state, action) pair (cached)."""
        key = (state, action)
        try:
            return self._exit_rates[key]
        except KeyError:
            raise ModelError(f"unknown state-action {key!r}") from None

    def state_action_pairs(self) -> List[Tuple[State, Action]]:
        """All (state, action) pairs in deterministic order (fresh list)."""
        return list(self.state_action_pairs_ro())

    # ------------------------------------------------------------------
    # Read-only fast accessors — no defensive copies.  Used by solvers
    # and the compiled kernel layer; callers must not mutate the
    # returned containers.
    # ------------------------------------------------------------------

    @property
    def states_ro(self) -> List[State]:
        """States in insertion order — the internal list, do not mutate."""
        return self._states

    def actions_ro(self, state: State) -> List[Action]:
        """Actions of a state — the internal list, do not mutate."""
        try:
            return self._actions[state]
        except KeyError:
            raise ModelError(f"unknown state {state!r}") from None

    def transitions_ro(self, state: State, action: Action) -> List[Transition]:
        """Transitions of a pair — the internal list, do not mutate."""
        try:
            return self._transitions[(state, action)]
        except KeyError:
            raise ModelError(
                f"unknown state-action {(state, action)!r}"
            ) from None

    def state_action_pairs_ro(self) -> List[Tuple[State, Action]]:
        """Cached pair list in deterministic order — do not mutate."""
        if self._pairs_cache is None:
            self._pairs_cache = [
                (s, a) for s in self._states for a in self._actions[s]
            ]
        return self._pairs_cache

    def compiled(self):
        """The :class:`~repro.core.compiled.CompiledCTMDP` view (cached).

        Recompiled lazily after any :meth:`add_action`/:meth:`add_state`.
        """
        if self._compiled is None:
            from repro.core.compiled import CompiledCTMDP

            self._compiled = CompiledCTMDP.from_model(self)
        return self._compiled

    # ------------------------------------------------------------------
    # Validation and derived models
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check structural soundness.

        Raises
        ------
        ModelError
            If the model has no states, any state has no action, or every
            action of some state has zero exit rate while other states
            exist (an absorbing trap that breaks the average-cost LP's
            irreducibility assumption is allowed only for single-state
            models).
        """
        if self._validated:
            return
        if not self._states:
            raise ModelError("CTMDP has no states")
        for state in self._states:
            if not self._actions[state]:
                raise ModelError(f"state {state!r} has no actions")
        self._validated = True

    def max_exit_rate(self) -> float:
        """Largest exit rate over all (state, action) pairs (cached)."""
        self.validate()
        if self._max_exit is None:
            self._max_exit = max(self._exit_rates.values(), default=0.0)
        return self._max_exit

    def uniformized(
        self, rate: Optional[float] = None, tol: float = 1e-6
    ) -> Tuple[np.ndarray, np.ndarray, List[Tuple[State, Action]], float]:
        """Uniformize into a discrete-time MDP (dense reference path).

        Returns ``(P, c, pairs, rate)`` where row ``k`` of ``P`` is the
        one-step distribution of pair ``pairs[k] = (state, action)``, and
        ``c[k]`` is the *per-step* expected cost ``cost_rate / rate``.  The
        average cost per unit time of the CTMDP equals ``rate`` times the
        average cost per step of this DTMDP, so solvers can work entirely
        in discrete time.

        Rows are renormalised only to absorb floating-point round-off:
        a row whose sum deviates from one by more than ``tol`` indicates
        inconsistent rate bookkeeping and raises :class:`ModelError`
        naming the offending (state, action) pair rather than silently
        rescaling the distribution.

        The compiled layer provides the sparse equivalent
        (:meth:`repro.core.compiled.CompiledCTMDP.uniformized_sparse`);
        this dense form remains the reference implementation and the
        convenient choice for small models and notebooks.
        """
        self.validate()
        max_exit = self.max_exit_rate()
        if rate is None:
            rate = max_exit * (1.0 + 1e-9) if max_exit > 0 else 1.0
        elif rate < max_exit:
            raise ModelError(
                f"uniformization rate {rate:.3g} below max exit {max_exit:.3g}"
            )
        pairs = self.state_action_pairs()
        n = self.num_states
        p = np.zeros((len(pairs), n))
        c = np.zeros(len(pairs))
        for k, (s, a) in enumerate(pairs):
            i = self._state_index[s]
            # Self-loop slack from the *cached* exit rate: the row-sum
            # check below then cross-checks the cache against the actual
            # transition list, catching stale bookkeeping loudly.
            stay = 1.0 - self._exit_rates[(s, a)] / rate
            for t in self._transitions[(s, a)]:
                j = self._state_index[t.target]
                p[k, j] += t.rate / rate
            p[k, i] += stay
            c[k] = self._cost_rates[(s, a)] / rate
        if (p < -1e-12).any():
            raise ModelError("uniformization produced negative probabilities")
        p = np.clip(p, 0.0, None)
        sums = p.sum(axis=1)
        deviation = np.abs(sums - 1.0)
        if (deviation > tol).any():
            k = int(deviation.argmax())
            raise ModelError(
                f"uniformized row for pair {pairs[k]!r} sums to "
                f"{sums[k]:.12g}; transition rates are inconsistent"
            )
        p /= sums[:, np.newaxis]
        return p, c, pairs, rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CTMDP(states={self.num_states}, "
            f"state_actions={self.num_state_actions})"
        )
