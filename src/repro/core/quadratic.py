"""The naive coupled (quadratic) formulation the paper could not solve.

Section 2: "In case the buses talk to each other through bridges the
equality constraints and the cost function have quadratic terms. ... An
attempt was made to solve the nonlinear equations by using the nonlinear
solver from Matlab ver. 6.1. but we were not able to get solutions for
them."

This module reconstructs that formulation honestly so the ablation bench
can compare it against the split method:

* one stationary distribution per subsystem (fixed equal-share
  arbitration, so the chain is well-defined),
* the arrival rate of every bridge-entry buffer is an unknown coupled to
  the *upstream* subsystems' distributions (carried-rate products), making
  the balance equations **bilinear** and the rate-consistency equations
  polynomial — the quadratic terms the paper describes,
* everything is handed to ``scipy.optimize.minimize`` (SLSQP) as one
  nonlinear program.

On anything beyond toy sizes SLSQP fails to converge, stalls at a large
residual, or exhausts its iteration budget — reproducing the paper's
negative result (their Matlab 6.1 attempt) and motivating the split.
:class:`QuadraticDiagnostics` captures exactly how it failed.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import minimize

from repro.arch.topology import Topology
from repro.core.splitting import SplitSystem, split
from repro.errors import SolverError


@dataclass
class QuadraticDiagnostics:
    """Outcome of one naive-formulation solve attempt.

    Attributes
    ----------
    success:
        Whether SLSQP reported success *and* the constraint residual is
        below ``residual_tol`` — both must hold for the solution to count.
    solver_reported_success / message / iterations:
        Raw backend status.
    max_residual:
        Worst violation of the balance / normalisation / rate-consistency
        equations at the returned point.
    objective:
        Weighted loss rate at the returned point (meaningless unless
        ``success``).
    num_variables / num_equality_constraints / num_bilinear_terms:
        Problem-size bookkeeping for the ablation report.
    wall_time_seconds:
        Time spent inside the solver.
    """

    success: bool
    solver_reported_success: bool
    message: str
    iterations: int
    max_residual: float
    objective: float
    num_variables: int
    num_equality_constraints: int
    num_bilinear_terms: int
    wall_time_seconds: float


class QuadraticCoupledSizer:
    """Solve the *unsplit* coupled stationary equations directly.

    Parameters
    ----------
    capacity:
        Buffer capacity used for every client (kept tiny on purpose; the
        state count is the product over clients per subsystem).
    max_iter:
        SLSQP iteration budget.
    residual_tol:
        Max constraint violation accepted as "actually solved".
    """

    def __init__(
        self,
        capacity: int = 1,
        max_iter: int = 200,
        residual_tol: float = 1e-5,
    ) -> None:
        if capacity < 1:
            raise SolverError(f"capacity must be >= 1, got {capacity}")
        if max_iter < 1:
            raise SolverError(f"max_iter must be >= 1, got {max_iter}")
        self.capacity = int(capacity)
        self.max_iter = int(max_iter)
        self.residual_tol = float(residual_tol)

    # ------------------------------------------------------------------

    def _prepare(self, topology: Topology):
        """Precompute state lattices and index maps."""
        system = split(topology, self.capacity)
        subsystem_states: List[List[tuple]] = []
        for sub in system.subsystems:
            caps = [c.capacity for c in sub.clients]
            states = list(
                itertools.product(*(range(k + 1) for k in caps))
            )
            subsystem_states.append(states)
        bridge_clients = [
            name
            for sub in system.subsystems
            for name in sub.bridge_client_names
        ]
        return system, subsystem_states, bridge_clients

    def _unpack(
        self,
        x: np.ndarray,
        subsystem_states: List[List[tuple]],
        num_rates: int,
    ) -> Tuple[List[np.ndarray], np.ndarray]:
        pis = []
        offset = 0
        for states in subsystem_states:
            n = len(states)
            pis.append(x[offset : offset + n])
            offset += n
        rates = x[offset : offset + num_rates]
        return pis, rates

    @staticmethod
    def _client_rates(
        sub, rates: np.ndarray, rate_index: Dict[str, int]
    ) -> List[float]:
        """Arrival rate per client: fixed for processors, variable for bridges."""
        values = []
        for client in sub.clients:
            if client.name in rate_index:
                values.append(rates[rate_index[client.name]])
            else:
                values.append(client.arrival_rate)
        return values

    def _balance_residuals(
        self,
        sub,
        states: List[tuple],
        pi: np.ndarray,
        arrival: Sequence[float],
    ) -> np.ndarray:
        """``pi Q = 0`` residuals under equal-share arbitration.

        Service: the bus splits its attention equally over non-empty
        buffers, so client ``i`` drains at ``mu_i / #nonempty``.
        """
        index = {s: k for k, s in enumerate(states)}
        n = len(states)
        flow = np.zeros(n)
        for k, state in enumerate(states):
            mass = pi[k]
            nonempty = [i for i, q in enumerate(state) if q > 0]
            # Arrivals.
            for i, client in enumerate(sub.clients):
                lam = arrival[i]
                if lam <= 0 or state[i] >= client.capacity:
                    continue
                target = list(state)
                target[i] += 1
                j = index[tuple(target)]
                flow[j] += mass * lam
                flow[k] -= mass * lam
            # Services (equal share).
            if nonempty:
                share = 1.0 / len(nonempty)
                for i in nonempty:
                    mu = sub.clients[i].service_rate * share
                    target = list(state)
                    target[i] -= 1
                    j = index[tuple(target)]
                    flow[j] += mass * mu
                    flow[k] -= mass * mu
        return flow

    def _blocking(
        self,
        sub,
        states: List[tuple],
        pi: np.ndarray,
        client_name: str,
    ) -> float:
        """P(named client's buffer is full) under ``pi``."""
        i = next(
            idx for idx, c in enumerate(sub.clients) if c.name == client_name
        )
        cap = sub.clients[i].capacity
        return float(
            sum(pi[k] for k, s in enumerate(states) if s[i] == cap)
        )

    # ------------------------------------------------------------------

    def solve(self, topology: Topology) -> QuadraticDiagnostics:
        """Attempt the naive coupled solve; never raises on solver failure.

        Returns diagnostics whether or not SLSQP succeeded — the ablation
        bench reports both paths.
        """
        system, subsystem_states, bridge_clients = self._prepare(topology)
        rate_index = {name: i for i, name in enumerate(bridge_clients)}
        num_pi = sum(len(s) for s in subsystem_states)
        num_rates = len(bridge_clients)
        num_vars = num_pi + num_rates

        # Count bilinear terms: every (bridge-rate x pi) product in the
        # balance equations, plus blocking products in rate consistency.
        num_bilinear = 0
        for sub, states in zip(system.subsystems, subsystem_states):
            num_bilinear += len(sub.bridge_client_names) * len(states)
        for hops in system.flow_hops.values():
            if len(hops) > 1:
                num_bilinear += len(hops) - 1

        def residuals(x: np.ndarray) -> np.ndarray:
            pis, rates = self._unpack(x, subsystem_states, num_rates)
            parts: List[np.ndarray] = []
            blocking_cache: Dict[str, float] = {}
            for sub, states, pi in zip(
                system.subsystems, subsystem_states, pis
            ):
                arrival = self._client_rates(sub, rates, rate_index)
                balance = self._balance_residuals(sub, states, pi, arrival)
                # One balance row per subsystem is linearly dependent on
                # the rest (rows sum to zero); drop it so the equality
                # system is not artificially over-determined for SLSQP.
                parts.append(balance[1:])
                parts.append(np.array([pi.sum() - 1.0]))
                for client in sub.clients:
                    blocking_cache[client.name] = self._blocking(
                        sub, states, pi, client.name
                    )
            # Rate consistency: carried-rate thinning along each flow.
            consistency = np.zeros(num_rates)
            accumulated = np.zeros(num_rates)
            for flow_name, hops in system.flow_hops.items():
                rate = system.topology.flows[flow_name].rate
                for j, hop in enumerate(hops):
                    if j > 0:
                        accumulated[rate_index[hop.client]] += rate
                    rate *= 1.0 - blocking_cache.get(hop.client, 0.0)
            consistency = rates - accumulated
            parts.append(consistency)
            return np.concatenate(parts)

        def objective(x: np.ndarray) -> float:
            pis, rates = self._unpack(x, subsystem_states, num_rates)
            total = 0.0
            for sub, states, pi in zip(
                system.subsystems, subsystem_states, pis
            ):
                arrival = self._client_rates(sub, rates, rate_index)
                for k, state in enumerate(states):
                    for i, client in enumerate(sub.clients):
                        if state[i] == client.capacity:
                            total += (
                                pi[k] * client.loss_weight * arrival[i]
                            )
            return total

        # Initial point: uniform distributions, offered rates.
        x0 = np.concatenate(
            [
                np.full(len(states), 1.0 / len(states))
                for states in subsystem_states
            ]
            + [
                np.array(
                    [
                        system.subsystem_of_client(name)
                        .client(name)
                        .arrival_rate
                        for name in bridge_clients
                    ]
                )
                if num_rates
                else np.zeros(0)
            ]
        )
        max_rate = max(
            (f.rate for f in topology.flows.values()), default=1.0
        ) * max(len(topology.flows), 1)
        bounds = [(0.0, 1.0)] * num_pi + [(0.0, max_rate)] * num_rates

        num_eq = residuals(x0).size
        start = time.perf_counter()
        try:
            result = minimize(
                objective,
                x0,
                method="SLSQP",
                bounds=bounds,
                constraints=[{"type": "eq", "fun": residuals}],
                options={"maxiter": self.max_iter, "ftol": 1e-10},
            )
            elapsed = time.perf_counter() - start
            final_residual = float(np.abs(residuals(result.x)).max())
            solver_ok = bool(result.success)
            return QuadraticDiagnostics(
                success=solver_ok and final_residual <= self.residual_tol,
                solver_reported_success=solver_ok,
                message=str(result.message),
                iterations=int(result.nit),
                max_residual=final_residual,
                objective=float(result.fun),
                num_variables=num_vars,
                num_equality_constraints=num_eq,
                num_bilinear_terms=num_bilinear,
                wall_time_seconds=elapsed,
            )
        except Exception as exc:  # scipy can raise on pathological inputs
            elapsed = time.perf_counter() - start
            return QuadraticDiagnostics(
                success=False,
                solver_reported_success=False,
                message=f"solver raised: {exc}",
                iterations=0,
                max_residual=float("inf"),
                objective=float("inf"),
                num_variables=num_vars,
                num_equality_constraints=num_eq,
                num_bilinear_terms=num_bilinear,
                wall_time_seconds=elapsed,
            )
