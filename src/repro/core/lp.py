"""Occupation-measure linear programs for average-cost CTMDPs.

This module implements the LP characterisation of optimal policies for
average-cost constrained CTMDPs used by the paper (its reference [1],
Feinberg 2002, "Optimal control of average reward constrained continuous
time finite Markov decision processes").

For a single CTMDP the LP over the occupation measure ``x(s, a)``
(the long-run fraction of time spent in state ``s`` while the controller
uses action ``a``) is::

    minimise    sum_{s,a} x(s,a) c(s,a)
    subject to  sum_{s,a} x(s,a) q(j | s, a) = 0       for every state j
                sum_{s,a} x(s,a)             = 1
                sum_{s,a} x(s,a) d_k(s,a)   <= D_k     for every constraint k
                x(s,a) >= 0

where ``q(j | s, a)`` is the transition rate into ``j`` (negative exit
rate when ``j = s``).  An optimal policy is recovered as
``phi(a|s) = x(s,a) / sum_a x(s,a)``.

The paper's central observation is that when buses talk *through bridges*
the joint system couples the occupation measures of the individual buses
multiplicatively, so the equality constraints above become **quadratic**
(see :mod:`repro.core.quadratic` for that honest, failing formulation).
Its remedy — split the architecture into linear subsystems and solve all
of them **in one go** — corresponds here to :class:`BlockLP`: one
occupation-measure block per subsystem, stitched together by *shared
linear* constraints (the global buffer budget) while bridge flow rates are
resolved by an outer fixed point (:mod:`repro.core.sizing`).

Assembly runs on the compiled kernel layer (:mod:`repro.core.compiled`):
each block contributes pre-flattened COO triplets instead of per-pair
dict walks, and :class:`BlockProgram` keeps the sparse structure plus
the last optimal simplex **basis** between solves, so a sequence of LPs
that differ only in rate/cost coefficients — the bridge-rate fixed point
of :class:`~repro.core.sizing.BufferSizer` — pays the interior-point
cost once and warm-starts every subsequent solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.sparse import csr_matrix

from repro.core.compiled import SparseLPResult, solve_sparse_lp
from repro.core.ctmdp import CTMDP, Action, State
from repro.core.policy import StationaryPolicy, policy_from_occupation_measure
from repro.errors import InfeasibleError, SolverError


@dataclass
class ConstraintSpec:
    """An upper bound on the long-run average of a named constraint cost.

    ``sum_{s,a} x(s,a) * model.constraint_rate(name, s, a) <= bound``.
    """

    name: str
    bound: float


@dataclass
class LPSolution:
    """Solution of a (block) occupation-measure LP.

    Attributes
    ----------
    objective:
        Optimal long-run average cost rate (weighted over blocks).
    occupations:
        Per block: mapping ``(state, action) -> probability mass``.
    policies:
        Per block: the extracted stationary randomised policy.  Empty
        for the model-free compiled sizing path, which carries no CTMDP
        objects to extract policies from.
    block_costs:
        Per block: its own average cost rate under the solution.
    constraint_values:
        Achieved long-run averages for every local and shared constraint,
        keyed by ``(block_index, name)`` for local and ``name`` for shared.
    iterations:
        Simplex/IPM iteration count reported by the backend.
    """

    objective: float
    occupations: List[Dict[Tuple[State, Action], float]]
    policies: List[StationaryPolicy]
    block_costs: List[float]
    constraint_values: Dict[object, float]
    iterations: int


class AverageCostLP:
    """Occupation-measure LP solver for a single CTMDP.

    Thin convenience wrapper over :class:`BlockLP` with one block.
    """

    def __init__(self, model: CTMDP) -> None:
        model.validate()
        self.model = model

    def solve(
        self,
        constraints: Sequence[ConstraintSpec] = (),
        maximise: bool = False,
    ) -> LPSolution:
        """Solve the (constrained) average-cost problem.

        Parameters
        ----------
        constraints:
            Local constraint bounds, referencing the model's named
            constraint rates.
        maximise:
            Maximise the cost instead of minimising (useful for reward
            formulations in tests).
        """
        block = BlockLP()
        block.add_block(self.model, constraints=constraints)
        return block.solve(maximise=maximise)


class BlockProgram:
    """A compiled joint occupation-measure LP with refreshable values.

    The program is assembled from *block providers* — any objects
    exposing ``n_states``, ``n_pairs``, ``cost_rates``,
    ``balance_coo()`` and ``constraint_vector(name)``
    (:class:`~repro.core.compiled.CompiledCTMDP` and
    :class:`~repro.core.compiled.CompiledBusLattice` both qualify).  The
    sparsity *structure* is fixed at construction; every call to
    :meth:`solve` re-reads the providers' current coefficient arrays, so
    callers refresh rates in place and re-solve.  The optimal basis of
    each solve warm-starts the next.

    Inequality rows come in two forms: ``vector`` rows built from each
    provider's named constraint vector (re-read per solve), and ``dict``
    rows with explicit per-pair coefficients (fixed at construction).
    """

    def __init__(
        self,
        providers: Sequence,
        weights: Sequence[float],
    ) -> None:
        if not providers:
            raise SolverError("BlockProgram has no blocks")
        self.providers = list(providers)
        self.weights = [float(w) for w in weights]
        self.pair_offsets = np.cumsum(
            [0] + [p.n_pairs for p in self.providers]
        )
        self.num_vars = int(self.pair_offsets[-1])
        self.num_balance = sum(p.n_states for p in self.providers)
        # (key, per-block constraint name or None, cols, vals, bound);
        # vector rows recompute cols/vals from providers at solve time.
        self._vector_rows: List[Tuple[object, List[str], float]] = []
        self._dict_rows: List[
            Tuple[object, np.ndarray, np.ndarray, float]
        ] = []
        self._basis = None

    # ------------------------------------------------------------------

    @property
    def structure_signature(self) -> Tuple[int, int, int]:
        """Shape fingerprint deciding whether a foreign basis can seed us.

        Two programs with equal signatures have identical variable and
        row counts, so a basis from one is dimensionally valid for the
        other (warm starts across a budget sweep with fixed capacities).
        """
        return (
            self.num_vars,
            self.num_balance + len(self.providers),
            len(self._vector_rows) + len(self._dict_rows),
        )

    @property
    def last_basis(self) -> Optional[object]:
        """The optimal basis of the most recent solve (None before any)."""
        return self._basis

    def seed_basis(self, basis: object) -> None:
        """Install a warm-start basis for the next :meth:`solve`.

        Callers must check :attr:`structure_signature` compatibility; a
        dimensionally mismatched basis is backend-undefined behaviour.
        """
        self._basis = basis

    def add_vector_row(
        self, key: object, names: List[Optional[str]], bound: float
    ) -> None:
        """Row ``sum_b x_b . constraint_vector(names[b]) <= bound``.

        ``names[b] = None`` leaves block ``b`` out of the row.
        """
        if len(names) != len(self.providers):
            raise SolverError(
                f"constraint {key!r} supplies {len(names)} names for "
                f"{len(self.providers)} blocks"
            )
        self._vector_rows.append((key, list(names), float(bound)))

    def add_dict_row(
        self, key: object, cols: np.ndarray, vals: np.ndarray, bound: float
    ) -> None:
        """Row with explicit column coefficients (fixed values)."""
        self._dict_rows.append(
            (key, np.asarray(cols), np.asarray(vals), float(bound))
        )

    # ------------------------------------------------------------------

    def _assemble_equalities(self) -> Tuple[csr_matrix, np.ndarray]:
        rows: List[np.ndarray] = []
        cols: List[np.ndarray] = []
        vals: List[np.ndarray] = []
        state_offset = 0
        for b, provider in enumerate(self.providers):
            r, c, v = provider.balance_coo()
            rows.append(r + state_offset)
            cols.append(c + self.pair_offsets[b])
            vals.append(v)
            state_offset += provider.n_states
        # Normalisation row per block.
        for b, provider in enumerate(self.providers):
            cols.append(
                np.arange(
                    self.pair_offsets[b],
                    self.pair_offsets[b + 1],
                    dtype=np.int64,
                )
            )
            rows.append(
                np.full(provider.n_pairs, self.num_balance + b, dtype=np.int64)
            )
            vals.append(np.ones(provider.n_pairs))
        a_eq = csr_matrix(
            (
                np.concatenate(vals),
                (np.concatenate(rows), np.concatenate(cols)),
            ),
            shape=(self.num_balance + len(self.providers), self.num_vars),
        )
        b_eq = np.zeros(self.num_balance + len(self.providers))
        b_eq[self.num_balance:] = 1.0
        return a_eq, b_eq

    def _assemble_inequalities(
        self, bound_overrides: Optional[Dict[object, float]]
    ) -> Tuple[
        Optional[csr_matrix],
        Optional[np.ndarray],
        List[Tuple[object, np.ndarray, np.ndarray]],
    ]:
        ub_rows: List[Tuple[object, np.ndarray, np.ndarray, float]] = []
        for key, names, bound in self._vector_rows:
            cols_parts: List[np.ndarray] = []
            vals_parts: List[np.ndarray] = []
            for b, name in enumerate(names):
                if name is None:
                    continue
                vec = self.providers[b].constraint_vector(name)
                nz = np.flatnonzero(vec)
                cols_parts.append(nz + self.pair_offsets[b])
                vals_parts.append(vec[nz])
            cols = (
                np.concatenate(cols_parts)
                if cols_parts
                else np.empty(0, dtype=np.int64)
            )
            vals = np.concatenate(vals_parts) if vals_parts else np.empty(0)
            ub_rows.append((key, cols, vals, bound))
        for key, cols, vals, bound in self._dict_rows:
            ub_rows.append((key, cols, vals, bound))
        if not ub_rows:
            return None, None, []
        if bound_overrides:
            ub_rows = [
                (key, cols, vals, bound_overrides.get(key, bound))
                for key, cols, vals, bound in ub_rows
            ]
        r = np.concatenate(
            [
                np.full(len(cols), i, dtype=np.int64)
                for i, (_k, cols, _v, _b) in enumerate(ub_rows)
            ]
        )
        c = np.concatenate([cols for (_k, cols, _v, _b) in ub_rows])
        v = np.concatenate([vals for (_k, _c, vals, _b) in ub_rows])
        a_ub = csr_matrix(
            (v, (r, c)), shape=(len(ub_rows), self.num_vars)
        )
        b_ub = np.array([bound for (_k, _c, _v, bound) in ub_rows])
        return a_ub, b_ub, [(k, cols, vals) for (k, cols, vals, _b) in ub_rows]

    def cost_vector(self, maximise: bool = False) -> np.ndarray:
        """Current weighted objective coefficients across all blocks."""
        cost = np.concatenate(
            [
                w * provider.cost_rates
                for provider, w in zip(self.providers, self.weights)
            ]
        )
        return -cost if maximise else cost

    # ------------------------------------------------------------------

    def solve(
        self,
        maximise: bool = False,
        bound_overrides: Optional[Dict[object, float]] = None,
        warm: bool = True,
    ) -> Tuple[SparseLPResult, Dict[object, float]]:
        """Assemble from current provider values and solve.

        Returns the raw backend result plus the achieved value of every
        inequality row.  ``bound_overrides`` replaces the stored bound of
        matching row keys for this solve only (the adaptive space-bound
        relaxation).  A successful solve stores its basis; ``warm=True``
        reuses it on the next call.

        Raises
        ------
        InfeasibleError
            If the program is infeasible.
        SolverError
            For any other backend failure.
        """
        cost = self.cost_vector(maximise)
        a_eq, b_eq = self._assemble_equalities()
        a_ub, b_ub, row_coeffs = self._assemble_inequalities(bound_overrides)
        result = solve_sparse_lp(
            cost,
            a_eq,
            b_eq,
            a_ub,
            b_ub,
            warm_basis=self._basis if warm else None,
        )
        if result.status == "infeasible":
            raise InfeasibleError(
                "occupation-measure LP is infeasible: " + result.message,
                status=result.status,
            )
        if result.status != "optimal":
            raise SolverError(
                "LP backend failed: " + result.message,
                status=result.status,
            )
        self._basis = result.basis
        x = np.clip(result.x, 0.0, None)
        achieved = {
            key: float(x[cols] @ vals) for key, cols, vals in row_coeffs
        }
        return result, achieved


class BlockLP:
    """A joint LP over several CTMDP blocks with shared linear constraints.

    This is the computational object behind the paper's split method: each
    bridge-separated subsystem contributes one block (its own balance
    equations and normalisation — *linear*), and the scarce total buffer
    budget contributes one shared row across all blocks.  Solving this LP
    solves "all the equations in one go and not sequentially for each
    subsystem", as Section 2 of the paper requires.
    """

    def __init__(self) -> None:
        self._models: List[CTMDP] = []
        self._weights: List[float] = []
        self._local_constraints: List[List[ConstraintSpec]] = []
        self._shared_constraints: List[
            Tuple[str, List[Dict[Tuple[State, Action], float]], float]
        ] = []

    # ------------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Number of CTMDP blocks added so far."""
        return len(self._models)

    def add_block(
        self,
        model: CTMDP,
        weight: float = 1.0,
        constraints: Sequence[ConstraintSpec] = (),
    ) -> int:
        """Add a CTMDP block; returns its index.

        ``weight`` scales the block's cost in the joint objective (the
        paper's "weighing of the loss at processors").
        """
        if weight < 0:
            raise SolverError(f"block weight must be >= 0, got {weight}")
        model.validate()
        self._models.append(model)
        self._weights.append(float(weight))
        self._local_constraints.append(list(constraints))
        return len(self._models) - 1

    def add_shared_constraint(
        self,
        name: str,
        coefficients: List[Dict[Tuple[State, Action], float]],
        bound: float,
    ) -> None:
        """Add ``sum_b sum_{s,a} coeff_b(s,a) x_b(s,a) <= bound``.

        ``coefficients`` must have one dict per existing block (empty dict
        for blocks that do not participate).
        """
        if len(coefficients) != self.num_blocks:
            raise SolverError(
                f"shared constraint {name!r} supplies {len(coefficients)} "
                f"coefficient maps for {self.num_blocks} blocks"
            )
        self._shared_constraints.append(
            (name, [dict(c) for c in coefficients], float(bound))
        )

    def add_shared_budget(
        self,
        name: str,
        constraint_name: str,
        bound: float,
    ) -> None:
        """Shared constraint built from each block's named constraint rates.

        Convenience for the common case "the sum over all subsystems of
        the expected occupied buffer space is at most the budget": uses
        ``model.constraint_rate(constraint_name, s, a)`` as coefficients
        in every block.
        """
        coefficients = []
        for model in self._models:
            comp = model.compiled()
            vec = comp.constraint_vector(constraint_name)
            nz = np.flatnonzero(vec)
            coefficients.append(
                {comp.pairs[k]: float(vec[k]) for k in nz}
            )
        self.add_shared_constraint(name, coefficients, bound)

    # ------------------------------------------------------------------

    def compile(self) -> BlockProgram:
        """Freeze the sparse structure into a reusable BlockProgram."""
        if not self._models:
            raise SolverError("BlockLP has no blocks")
        providers = [m.compiled() for m in self._models]
        program = BlockProgram(providers, self._weights)
        for b, specs in enumerate(self._local_constraints):
            for spec in specs:
                names: List[Optional[str]] = [None] * len(providers)
                names[b] = spec.name
                program.add_vector_row((b, spec.name), names, spec.bound)
        for name, coefficient_maps, bound in self._shared_constraints:
            cols: List[int] = []
            vals: List[float] = []
            for b, cmap in enumerate(coefficient_maps):
                if not cmap:
                    continue
                pair_index = providers[b].pair_index()
                for pair, value in cmap.items():
                    if pair not in pair_index:
                        raise SolverError(
                            f"shared constraint {name!r} references unknown "
                            f"state-action {pair!r} in block {b}"
                        )
                    if value != 0.0:
                        cols.append(
                            int(program.pair_offsets[b]) + pair_index[pair]
                        )
                        vals.append(value)
            program.add_dict_row(
                name,
                np.asarray(cols, dtype=np.int64),
                np.asarray(vals, dtype=float),
                bound,
            )
        return program

    def solve(self, maximise: bool = False) -> LPSolution:
        """Assemble and solve the joint LP with HiGHS.

        Raises
        ------
        InfeasibleError
            If the joint problem is infeasible (e.g. the shared budget is
            below what the balance equations force).
        SolverError
            For any other backend failure.
        """
        program = self.compile()
        result, achieved = program.solve(maximise=maximise, warm=False)
        x = np.clip(result.x, 0.0, None)
        occupations: List[Dict[Tuple[State, Action], float]] = []
        policies: List[StationaryPolicy] = []
        block_costs: List[float] = []
        for b, model in enumerate(self._models):
            comp = program.providers[b]
            xb = x[program.pair_offsets[b]:program.pair_offsets[b + 1]]
            occ = {
                pair: float(xb[k]) for k, pair in enumerate(comp.pairs)
            }
            occupations.append(occ)
            policies.append(policy_from_occupation_measure(model, occ))
            block_costs.append(float(xb @ comp.cost_rates))
        objective = float(
            result.objective if not maximise else -result.objective
        )
        return LPSolution(
            objective=objective,
            occupations=occupations,
            policies=policies,
            block_costs=block_costs,
            constraint_values=achieved,
            iterations=result.iterations,
        )
