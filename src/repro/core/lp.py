"""Occupation-measure linear programs for average-cost CTMDPs.

This module implements the LP characterisation of optimal policies for
average-cost constrained CTMDPs used by the paper (its reference [1],
Feinberg 2002, "Optimal control of average reward constrained continuous
time finite Markov decision processes").

For a single CTMDP the LP over the occupation measure ``x(s, a)``
(the long-run fraction of time spent in state ``s`` while the controller
uses action ``a``) is::

    minimise    sum_{s,a} x(s,a) c(s,a)
    subject to  sum_{s,a} x(s,a) q(j | s, a) = 0       for every state j
                sum_{s,a} x(s,a)             = 1
                sum_{s,a} x(s,a) d_k(s,a)   <= D_k     for every constraint k
                x(s,a) >= 0

where ``q(j | s, a)`` is the transition rate into ``j`` (negative exit
rate when ``j = s``).  An optimal policy is recovered as
``phi(a|s) = x(s,a) / sum_a x(s,a)``.

The paper's central observation is that when buses talk *through bridges*
the joint system couples the occupation measures of the individual buses
multiplicatively, so the equality constraints above become **quadratic**
(see :mod:`repro.core.quadratic` for that honest, failing formulation).
Its remedy — split the architecture into linear subsystems and solve all
of them **in one go** — corresponds here to :class:`BlockLP`: one
occupation-measure block per subsystem, stitched together by *shared
linear* constraints (the global buffer budget) while bridge flow rates are
resolved by an outer fixed point (:mod:`repro.core.sizing`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.ctmdp import CTMDP, Action, State
from repro.core.policy import StationaryPolicy, policy_from_occupation_measure
from repro.errors import InfeasibleError, SolverError


@dataclass
class ConstraintSpec:
    """An upper bound on the long-run average of a named constraint cost.

    ``sum_{s,a} x(s,a) * model.constraint_rate(name, s, a) <= bound``.
    """

    name: str
    bound: float


@dataclass
class LPSolution:
    """Solution of a (block) occupation-measure LP.

    Attributes
    ----------
    objective:
        Optimal long-run average cost rate (weighted over blocks).
    occupations:
        Per block: mapping ``(state, action) -> probability mass``.
    policies:
        Per block: the extracted stationary randomised policy.
    block_costs:
        Per block: its own average cost rate under the solution.
    constraint_values:
        Achieved long-run averages for every local and shared constraint,
        keyed by ``(block_index, name)`` for local and ``name`` for shared.
    iterations:
        Simplex/IPM iteration count reported by the backend.
    """

    objective: float
    occupations: List[Dict[Tuple[State, Action], float]]
    policies: List[StationaryPolicy]
    block_costs: List[float]
    constraint_values: Dict[object, float]
    iterations: int


class AverageCostLP:
    """Occupation-measure LP solver for a single CTMDP.

    Thin convenience wrapper over :class:`BlockLP` with one block.
    """

    def __init__(self, model: CTMDP) -> None:
        model.validate()
        self.model = model

    def solve(
        self,
        constraints: Sequence[ConstraintSpec] = (),
        maximise: bool = False,
    ) -> LPSolution:
        """Solve the (constrained) average-cost problem.

        Parameters
        ----------
        constraints:
            Local constraint bounds, referencing the model's named
            constraint rates.
        maximise:
            Maximise the cost instead of minimising (useful for reward
            formulations in tests).
        """
        block = BlockLP()
        block.add_block(self.model, constraints=constraints)
        return block.solve(maximise=maximise)


class BlockLP:
    """A joint LP over several CTMDP blocks with shared linear constraints.

    This is the computational object behind the paper's split method: each
    bridge-separated subsystem contributes one block (its own balance
    equations and normalisation — *linear*), and the scarce total buffer
    budget contributes one shared row across all blocks.  Solving this LP
    solves "all the equations in one go and not sequentially for each
    subsystem", as Section 2 of the paper requires.
    """

    def __init__(self) -> None:
        self._models: List[CTMDP] = []
        self._weights: List[float] = []
        self._local_constraints: List[List[ConstraintSpec]] = []
        self._shared_constraints: List[
            Tuple[str, List[Dict[Tuple[State, Action], float]], float]
        ] = []

    # ------------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Number of CTMDP blocks added so far."""
        return len(self._models)

    def add_block(
        self,
        model: CTMDP,
        weight: float = 1.0,
        constraints: Sequence[ConstraintSpec] = (),
    ) -> int:
        """Add a CTMDP block; returns its index.

        ``weight`` scales the block's cost in the joint objective (the
        paper's "weighing of the loss at processors").
        """
        if weight < 0:
            raise SolverError(f"block weight must be >= 0, got {weight}")
        model.validate()
        self._models.append(model)
        self._weights.append(float(weight))
        self._local_constraints.append(list(constraints))
        return len(self._models) - 1

    def add_shared_constraint(
        self,
        name: str,
        coefficients: List[Dict[Tuple[State, Action], float]],
        bound: float,
    ) -> None:
        """Add ``sum_b sum_{s,a} coeff_b(s,a) x_b(s,a) <= bound``.

        ``coefficients`` must have one dict per existing block (empty dict
        for blocks that do not participate).
        """
        if len(coefficients) != self.num_blocks:
            raise SolverError(
                f"shared constraint {name!r} supplies {len(coefficients)} "
                f"coefficient maps for {self.num_blocks} blocks"
            )
        self._shared_constraints.append(
            (name, [dict(c) for c in coefficients], float(bound))
        )

    def add_shared_budget(
        self,
        name: str,
        constraint_name: str,
        bound: float,
    ) -> None:
        """Shared constraint built from each block's named constraint rates.

        Convenience for the common case "the sum over all subsystems of
        the expected occupied buffer space is at most the budget": uses
        ``model.constraint_rate(constraint_name, s, a)`` as coefficients
        in every block.
        """
        coefficients = []
        for model in self._models:
            coeffs: Dict[Tuple[State, Action], float] = {}
            for s, a in model.state_action_pairs():
                value = model.constraint_rate(constraint_name, s, a)
                if value != 0.0:
                    coeffs[(s, a)] = value
            coefficients.append(coeffs)
        self.add_shared_constraint(name, coefficients, bound)

    # ------------------------------------------------------------------

    def solve(self, maximise: bool = False) -> LPSolution:
        """Assemble and solve the joint LP with HiGHS.

        Raises
        ------
        InfeasibleError
            If the joint problem is infeasible (e.g. the shared budget is
            below what the balance equations force).
        SolverError
            For any other backend failure.
        """
        if not self._models:
            raise SolverError("BlockLP has no blocks")
        # Column layout: blocks in order, each block's (s, a) pairs in
        # deterministic order.
        pair_lists = [m.state_action_pairs() for m in self._models]
        offsets = np.cumsum([0] + [len(p) for p in pair_lists])
        num_vars = int(offsets[-1])

        cost = np.zeros(num_vars)
        for b, model in enumerate(self._models):
            for k, (s, a) in enumerate(pair_lists[b]):
                cost[offsets[b] + k] = self._weights[b] * model.cost_rate(s, a)
        if maximise:
            cost = -cost

        # Equality rows: balance per state per block + normalisation per
        # block.  Assemble as COO triplets (much faster than element-wise
        # sparse writes for the tens of thousands of entries a joint bus
        # model produces).
        num_balance = sum(m.num_states for m in self._models)
        eq_rows: List[int] = []
        eq_cols: List[int] = []
        eq_vals: List[float] = []
        b_eq = np.zeros(num_balance + self.num_blocks)
        row = 0
        row_of_state: List[Dict[State, int]] = []
        for b, model in enumerate(self._models):
            rows = {}
            for s in model.states:
                rows[s] = row
                row += 1
            row_of_state.append(rows)
        for b, model in enumerate(self._models):
            for k, (s, a) in enumerate(pair_lists[b]):
                col = offsets[b] + k
                exit_rate = 0.0
                for t in model.transitions(s, a):
                    eq_rows.append(row_of_state[b][t.target])
                    eq_cols.append(col)
                    eq_vals.append(t.rate)
                    exit_rate += t.rate
                eq_rows.append(row_of_state[b][s])
                eq_cols.append(col)
                eq_vals.append(-exit_rate)
        for b in range(self.num_blocks):
            for col in range(offsets[b], offsets[b + 1]):
                eq_rows.append(num_balance + b)
                eq_cols.append(col)
                eq_vals.append(1.0)
            b_eq[num_balance + b] = 1.0
        a_eq = csr_matrix(
            (eq_vals, (eq_rows, eq_cols)),
            shape=(num_balance + self.num_blocks, num_vars),
        )

        # Inequality rows: local constraints then shared constraints.
        ub_rows: List[Tuple[Dict[int, float], float, object]] = []
        for b, model in enumerate(self._models):
            pair_index = {pair: k for k, pair in enumerate(pair_lists[b])}
            for spec in self._local_constraints[b]:
                coeffs: Dict[int, float] = {}
                for pair, k in pair_index.items():
                    value = model.constraint_rate(spec.name, *pair)
                    if value != 0.0:
                        coeffs[offsets[b] + k] = value
                ub_rows.append((coeffs, spec.bound, (b, spec.name)))
        for name, coefficient_maps, bound in self._shared_constraints:
            coeffs = {}
            for b, cmap in enumerate(coefficient_maps):
                pair_index = {pair: k for k, pair in enumerate(pair_lists[b])}
                for pair, value in cmap.items():
                    if pair not in pair_index:
                        raise SolverError(
                            f"shared constraint {name!r} references unknown "
                            f"state-action {pair!r} in block {b}"
                        )
                    if value != 0.0:
                        coeffs[offsets[b] + pair_index[pair]] = value
            ub_rows.append((coeffs, bound, name))

        if ub_rows:
            ub_r: List[int] = []
            ub_c: List[int] = []
            ub_v: List[float] = []
            b_ub = np.zeros(len(ub_rows))
            for r, (coeffs, bound, _key) in enumerate(ub_rows):
                for col, value in coeffs.items():
                    ub_r.append(r)
                    ub_c.append(col)
                    ub_v.append(value)
                b_ub[r] = bound
            a_ub = csr_matrix(
                (ub_v, (ub_r, ub_c)), shape=(len(ub_rows), num_vars)
            )
        else:
            a_ub = None
            b_ub = None

        # Interior point (with HiGHS's default crossover to a basic
        # solution) is several times faster than simplex on these highly
        # degenerate occupation-measure LPs; fall back to simplex when
        # IPM struggles.
        result = linprog(
            cost,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=(0, None),
            method="highs-ipm",
        )
        if not result.success and result.status not in (2,):
            result = linprog(
                cost,
                A_ub=a_ub,
                b_ub=b_ub,
                A_eq=a_eq,
                b_eq=b_eq,
                bounds=(0, None),
                method="highs",
            )
        if not result.success:
            message = str(result.message)
            if result.status == 2 or "infeasible" in message.lower():
                raise InfeasibleError(
                    "occupation-measure LP is infeasible: " + message,
                    status=str(result.status),
                )
            raise SolverError(
                "LP backend failed: " + message,
                status=str(result.status),
            )

        x = np.clip(result.x, 0.0, None)
        occupations: List[Dict[Tuple[State, Action], float]] = []
        policies: List[StationaryPolicy] = []
        block_costs: List[float] = []
        for b, model in enumerate(self._models):
            occ = {
                pair: float(x[offsets[b] + k])
                for k, pair in enumerate(pair_lists[b])
            }
            occupations.append(occ)
            policies.append(policy_from_occupation_measure(model, occ))
            block_costs.append(
                sum(
                    mass * model.cost_rate(s, a)
                    for (s, a), mass in occ.items()
                )
            )
        constraint_values: Dict[object, float] = {}
        for coeffs, _bound, key in ub_rows:
            constraint_values[key] = float(
                sum(x[col] * value for col, value in coeffs.items())
            )
        objective = float(result.fun if not maximise else -result.fun)
        return LPSolution(
            objective=objective,
            occupations=occupations,
            policies=policies,
            block_costs=block_costs,
            constraint_values=constraint_values,
            iterations=int(getattr(result, "nit", 0) or 0),
        )
