"""Traffic-proportional buffer sizing — the paper's pre-sizing baseline.

Section 1: "We found this optimal distribution of buffer space different
from simple division of the space depending on traffic ratios."  This
policy *is* that simple division: each client's share of the budget is
its share of the total offered traffic.
"""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation
from repro.policies.base import (
    SizingPolicy,
    largest_remainder_rounding,
    sizing_clients,
)


class ProportionalSizing(SizingPolicy):
    """Split the budget proportionally to each client's offered rate."""

    name = "proportional"

    def allocate(self, topology: Topology, budget: int) -> BufferAllocation:
        clients = sizing_clients(topology)
        self._check_budget(budget, len(clients))
        shares = {c.name: c.arrival_rate for c in clients}
        sizes = largest_remainder_rounding(shares, budget)
        return BufferAllocation(sizes=sizes, budget=budget)
