"""Simulation-guided local search over allocations.

An empirical near-optimal reference for the ablation benches: start
from any allocation and hill-climb by moving one slot from one client
to another whenever a common-random-numbers simulation says total loss
drops.  Far too slow for a design loop (each move costs simulations) —
which is precisely the point of comparing it against the CTMDP method:
the analytic pipeline should recover most of its gain at a tiny
fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation
from repro.errors import PolicyError
from repro.sim.runner import replicate


@dataclass
class SearchTrace:
    """One accepted move of the local search."""

    donor: str
    receiver: str
    loss_before: float
    loss_after: float


class SimulatedAnnealingFreeLocalSearch:
    """Greedy one-slot exchange search (no annealing: accept only improvements).

    Parameters
    ----------
    replications / duration / base_seed:
        Evaluation budget per candidate.  All candidates share seeds
        (common random numbers) so comparisons are low-variance.
    max_moves:
        Upper bound on accepted moves.
    min_size:
        No client is driven below this size.
    candidates_per_round:
        Evaluate at most this many donor/receiver pairs per round —
        the pairs with the largest/smallest per-buffer loss first.
    """

    def __init__(
        self,
        replications: int = 3,
        duration: float = 1_000.0,
        base_seed: int = 0,
        max_moves: int = 40,
        min_size: int = 1,
        candidates_per_round: int = 6,
    ) -> None:
        if replications < 1:
            raise PolicyError("replications must be >= 1")
        if duration <= 0:
            raise PolicyError("duration must be > 0")
        if max_moves < 0:
            raise PolicyError("max_moves must be >= 0")
        if candidates_per_round < 1:
            raise PolicyError("candidates_per_round must be >= 1")
        self.replications = replications
        self.duration = duration
        self.base_seed = base_seed
        self.max_moves = max_moves
        self.min_size = min_size
        self.candidates_per_round = candidates_per_round
        self.trace: List[SearchTrace] = []

    # ------------------------------------------------------------------

    def _evaluate(self, topology: Topology, sizes: Dict[str, int]) -> float:
        summary = replicate(
            topology,
            sizes,
            replications=self.replications,
            duration=self.duration,
            base_seed=self.base_seed,
        )
        return summary.mean_total_loss()

    def refine(
        self, topology: Topology, allocation: BufferAllocation
    ) -> BufferAllocation:
        """Hill-climb from ``allocation``; returns the improved allocation."""
        sizes = dict(allocation.sizes)
        self.trace = []
        current_loss = self._evaluate(topology, sizes)
        for _move in range(self.max_moves):
            # Rank donors by lightest buffer pressure (loss per slot) and
            # receivers by heaviest: use per-source loss attribution of a
            # probe run as the ranking heuristic.
            probe = replicate(
                topology,
                sizes,
                replications=1,
                duration=self.duration / 2,
                base_seed=self.base_seed + 991,
            ).results[0]
            pressure = {
                name: probe.lost.get(name, 0) / max(size, 1)
                for name, size in sizes.items()
            }
            donors = sorted(
                (n for n, s in sizes.items() if s > self.min_size),
                key=lambda n: pressure.get(n, 0.0),
            )
            receivers = sorted(
                sizes, key=lambda n: pressure.get(n, 0.0), reverse=True
            )
            improved = False
            tried = 0
            for donor in donors:
                if tried >= self.candidates_per_round or improved:
                    break
                for receiver in receivers:
                    if receiver == donor:
                        continue
                    tried += 1
                    candidate = dict(sizes)
                    candidate[donor] -= 1
                    candidate[receiver] += 1
                    loss = self._evaluate(topology, candidate)
                    if loss < current_loss:
                        self.trace.append(
                            SearchTrace(
                                donor=donor,
                                receiver=receiver,
                                loss_before=current_loss,
                                loss_after=loss,
                            )
                        )
                        sizes = candidate
                        current_loss = loss
                        improved = True
                        break
                    if tried >= self.candidates_per_round:
                        break
            if not improved:
                break
        return BufferAllocation(sizes=sizes, budget=allocation.budget)
