"""Uniform (equal-split) buffer sizing."""

from __future__ import annotations

from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation
from repro.policies.base import (
    SizingPolicy,
    largest_remainder_rounding,
    sizing_clients,
)


class UniformSizing(SizingPolicy):
    """Give every client the same number of slots (remainder by name).

    The bluntest "constant buffer sizing": what a designer does with no
    traffic information at all.
    """

    name = "uniform"

    def allocate(self, topology: Topology, budget: int) -> BufferAllocation:
        clients = sizing_clients(topology)
        self._check_budget(budget, len(clients))
        shares = {c.name: 1.0 for c in clients}
        sizes = largest_remainder_rounding(shares, budget)
        return BufferAllocation(sizes=sizes, budget=budget)
