"""Buffer-allocation policies: the CTMDP method and its baselines.

* :class:`UniformSizing` — equal split (the naive constant sizing).
* :class:`ProportionalSizing` — split by traffic ratios, the paper's
  explicit strawman ("different from simple division of the space
  depending on traffic ratios") and the "pre-sizing" configuration of
  Figure 3 / Table 1.
* :class:`AnalyticGreedySizing` — M/M/1/K marginal-benefit greedy, a
  stronger queueing-theoretic baseline we add for the ablations.
* :class:`CTMDPSizing` — the paper's method, wrapping
  :class:`repro.core.sizing.BufferSizer`.
* :func:`calibrate_timeout_threshold` — the timeout policy's threshold:
  "the average time spent by a request in a buffer".
"""

from repro.policies.base import SizingPolicy, sizing_clients
from repro.policies.uniform import UniformSizing
from repro.policies.proportional import ProportionalSizing
from repro.policies.analytic import AnalyticGreedySizing
from repro.policies.ctmdp_policy import CTMDPSizing
from repro.policies.timeout import calibrate_timeout_threshold

__all__ = [
    "AnalyticGreedySizing",
    "CTMDPSizing",
    "ProportionalSizing",
    "SizingPolicy",
    "UniformSizing",
    "calibrate_timeout_threshold",
    "sizing_clients",
]
