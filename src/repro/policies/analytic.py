"""Analytic M/M/1/K greedy sizing — a queueing-theoretic baseline.

Each client is approximated as an isolated M/M/1/K queue whose service
rate is its bus service rate divided by the number of clients competing
for the same bus (a fair-share fluid approximation).  Slots are assigned
greedily to whichever client's *loss rate decreases most* from one more
slot.  Stronger than proportional sizing, but blind to the arbiter's
freedom — the gap to :class:`~repro.policies.ctmdp_policy.CTMDPSizing`
is what the CTMDP models buy.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Tuple

from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation
from repro.errors import PolicyError
from repro.policies.base import SizingPolicy, sizing_clients
from repro.queueing.mm1k import MM1KQueue


class AnalyticGreedySizing(SizingPolicy):
    """Greedy marginal-loss-decrease allocation on M/M/1/K approximations."""

    name = "analytic_greedy"

    def __init__(self, min_size: int = 1) -> None:
        if min_size < 1:
            raise PolicyError(f"min size must be >= 1, got {min_size}")
        self.min_size = min_size

    @staticmethod
    def _loss(rate: float, mu: float, k: int, weight: float) -> float:
        if rate <= 0:
            return 0.0
        return weight * MM1KQueue(rate, mu, k).loss_rate()

    def allocate(self, topology: Topology, budget: int) -> BufferAllocation:
        clients = sizing_clients(topology)
        self._check_budget(budget, len(clients), self.min_size)
        sizes: Dict[str, int] = {c.name: self.min_size for c in clients}
        effective_mu = {
            c.name: c.service_rate / max(c.competitors, 1) for c in clients
        }
        info = {c.name: c for c in clients}

        def gain(name: str) -> float:
            c = info[name]
            k = sizes[name]
            return self._loss(
                c.arrival_rate, effective_mu[name], k, c.loss_weight
            ) - self._loss(
                c.arrival_rate, effective_mu[name], k + 1, c.loss_weight
            )

        heap: List[Tuple[float, str]] = [
            (-gain(c.name), c.name) for c in clients
        ]
        heapq.heapify(heap)
        remaining = budget - sum(sizes.values())
        while remaining > 0:
            neg, name = heapq.heappop(heap)
            fresh = -gain(name)
            if heap and fresh > heap[0][0] + 1e-15:
                heapq.heappush(heap, (fresh, name))
                continue
            sizes[name] += 1
            remaining -= 1
            heapq.heappush(heap, (-gain(name), name))
        return BufferAllocation(sizes=sizes, budget=budget)
