"""The paper's CTMDP sizing wrapped in the common policy interface."""

from __future__ import annotations

from typing import Optional

from repro.arch.topology import Topology
from repro.core.sizing import BufferAllocation, BufferSizer, SizingResult


class CTMDPSizing:
    """Split-subsystem CTMDP sizing (the paper's method).

    Thin adapter around :class:`repro.core.sizing.BufferSizer` so the
    experiment harness can treat all policies uniformly.  The last full
    :class:`~repro.core.sizing.SizingResult` is kept for inspection.
    """

    name = "ctmdp"

    def __init__(self, **sizer_kwargs) -> None:
        self._sizer_kwargs = dict(sizer_kwargs)
        self.last_result: Optional[SizingResult] = None

    def allocate(self, topology: Topology, budget: int) -> BufferAllocation:
        """Run the full split + joint-LP + K-switching pipeline."""
        sizer = BufferSizer(total_budget=budget, **self._sizer_kwargs)
        result = sizer.size(topology)
        self.last_result = result
        return result.allocation
