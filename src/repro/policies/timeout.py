"""Timeout-policy threshold calibration.

The paper's third configuration drops a request "if the data in the
buffer times out i.e. reaches a threshold time.  The threshold time
chosen was the average time spent by a request in a buffer."  This module
measures that average on a calibration run (no timeouts active) so the
experiment harness can then enable the policy with the measured value.
"""

from __future__ import annotations

from typing import Dict

from repro.arch.topology import Topology
from repro.errors import PolicyError
from repro.sim.runner import simulate


def calibrate_timeout_threshold(
    topology: Topology,
    capacities: Dict[str, int],
    duration: float = 5_000.0,
    seed: int = 0,
    floor: float = 1e-6,
    multiplier: float = 1.0,
    backend: str = "heap",
) -> float:
    """Mean buffer waiting time of a calibration simulation.

    Parameters
    ----------
    topology / capacities:
        The system the timeout policy will run on (typically the
        pre-sizing allocation).
    duration / seed:
        Calibration run controls.
    backend:
        Simulation engine for the calibration run (see
        :data:`repro.sim.runner.SIM_BACKENDS`); the experiment drivers
        pass their context's backend through.
    floor:
        Lower bound to keep the threshold usable when the calibration
        sees almost no queueing.
    multiplier:
        Scales the measured mean.  The paper specifies the threshold as
        "the average time spent by a request in a buffer" but not how
        that average was measured (which run, waiting vs residence,
        global vs per buffer); the experiments use the multiplier that
        places the timeout policy in the loss regime the paper reports
        (see DESIGN.md's substitution notes).
    """
    if duration <= 0:
        raise PolicyError(f"duration must be > 0, got {duration}")
    if multiplier <= 0:
        raise PolicyError(f"multiplier must be > 0, got {multiplier}")
    result = simulate(
        topology, capacities, duration=duration, seed=seed, backend=backend
    )
    return max(result.mean_waiting_time * multiplier, floor)
