"""Common interface for buffer-allocation policies."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List

from repro.arch.topology import Topology
from repro.core.bus_model import BusClient
from repro.core.sizing import BufferAllocation
from repro.core.splitting import split
from repro.errors import PolicyError


@dataclass(frozen=True)
class SizingClient:
    """One buffer the policy must size.

    Attributes
    ----------
    name:
        Client buffer name (processor or bridge-entry).
    arrival_rate:
        Offered mean rate (un-thinned).
    service_rate:
        Bus service rate of this client's transactions.
    loss_weight:
        Importance in the loss objective.
    competitors:
        Number of clients sharing the same subsystem bus (for effective
        service-share heuristics).
    """

    name: str
    arrival_rate: float
    service_rate: float
    loss_weight: float
    competitors: int


def sizing_clients(topology: Topology) -> List[SizingClient]:
    """Every buffer a policy must size, with offered rates.

    Same client vocabulary as the CTMDP pipeline and the simulator:
    processors plus the bridge-entry buffers actually used by flows.
    """
    system = split(topology, capacity_cap=1)
    clients: List[SizingClient] = []
    for sub in system.subsystems:
        n = len(sub.clients)
        for client in sub.clients:
            clients.append(
                SizingClient(
                    name=client.name,
                    arrival_rate=client.arrival_rate,
                    service_rate=client.service_rate,
                    loss_weight=client.loss_weight,
                    competitors=n,
                )
            )
    return clients


class SizingPolicy(abc.ABC):
    """Interface every allocation policy implements."""

    #: Human-readable policy name used in reports.
    name: str = "base"

    @abc.abstractmethod
    def allocate(self, topology: Topology, budget: int) -> BufferAllocation:
        """Distribute ``budget`` slots over all sizing clients."""

    @staticmethod
    def _check_budget(budget: int, num_clients: int, min_size: int = 1) -> None:
        if budget < min_size * num_clients:
            raise PolicyError(
                f"budget {budget} cannot give {num_clients} clients "
                f"{min_size} slot(s) each"
            )


def largest_remainder_rounding(
    shares: Dict[str, float], budget: int, min_size: int = 1
) -> Dict[str, int]:
    """Round fractional shares to integers summing exactly to ``budget``.

    Every client first receives ``min_size``; the remaining slots are
    apportioned by the largest-remainder method on the shares, with ties
    broken by name for determinism.
    """
    if not shares:
        raise PolicyError("no clients to size")
    names = sorted(shares)
    floor_total = min_size * len(names)
    if budget < floor_total:
        raise PolicyError(
            f"budget {budget} below minimum {floor_total}"
        )
    spare = budget - floor_total
    total_share = sum(max(shares[n], 0.0) for n in names)
    if total_share <= 0:
        # Degenerate: no traffic at all; spread evenly.
        quotas = {n: spare / len(names) for n in names}
    else:
        quotas = {
            n: spare * max(shares[n], 0.0) / total_share for n in names
        }
    sizes = {n: min_size + int(quotas[n]) for n in names}
    remainders = sorted(
        names,
        key=lambda n: (-(quotas[n] - int(quotas[n])), n),
    )
    leftover = budget - sum(sizes.values())
    for n in remainders[:leftover]:
        sizes[n] += 1
    return sizes
