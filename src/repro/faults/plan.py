"""Deterministic fault plans: *what* breaks, *where*, and *when*.

A :class:`FaultPlan` is an ordered set of :class:`FaultEvent`\\ s, each
naming a fault ``kind`` (worker crash, stall, slowdown, connection
refusal/drop, broker loss, cache-blob corruption/truncation), the hook
``site`` it strikes (the named injection points threaded through
``repro.dist`` and ``repro.exec.cache``), and the occurrence window it
fires in — the ``after``-th through ``after + count``-th matching hook
call.  Triggering on *call counts* rather than wall-clock keeps a plan
exactly reproducible: the third ``cache_get`` is the third ``cache_get``
on every machine and every run, which is what lets the chaos suite
assert bitwise-identical merges under every plan.

Plans serialise to plain JSON (:meth:`FaultPlan.to_jsonable` /
:meth:`FaultPlan.from_jsonable`), so the chaos harness can ship one to
forked worker processes through the ``REPRO_FAULT_PLAN`` environment
variable and the CLI can load one from a file.

In the spirit of property-based validation (DateSAT): a plan is an
adversarial input, "merges stay bitwise-identical to serial" is the
invariant, and :func:`repro.faults.chaos.run_chaos_matrix` is the
machine-checked quantifier over both.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "FAULT_KINDS",
    "SITES",
    "FaultEvent",
    "FaultPlan",
    "standard_plans",
]

#: Every fault kind the injector knows how to perform.
FAULT_KINDS = (
    "worker_crash",     # os._exit mid-job (SIGKILL-equivalent)
    "worker_stall",     # job hangs AND heartbeats stop (frozen process)
    "worker_slow",      # job takes extra seconds (straggler)
    "connect_refuse",   # connection attempt refused
    "connection_drop",  # established connection torn mid-RPC
    "broker_loss",      # broker process dies mid-run (harness-level)
    "cache_corrupt",    # stored blob comes back with flipped bytes
    "cache_truncate",   # stored blob comes back short
)

#: The named injection hook sites threaded through the runtime.
#: ``chaos.broker`` is interpreted by the chaos harness (it stops the
#: broker process); every other site is an inline hook.
SITES = (
    "connect",              # BrokerConnection establishment
    "worker.execute",       # worker about to run a started job
    "worker.heartbeat",     # worker's liveness beat
    "executor.submit",      # driver submitting a batch
    "executor.fetch_ready", # driver polling results
    "cachetier.get",        # tier fetching a blob from the broker store
    "cachetier.put",        # tier publishing a blob to the broker store
    "cachetier.blob",       # blob bytes returned by the broker store
    "cache.entry",          # entry bytes read by the disk ResultCache
    "chaos.broker",         # harness-level broker kill
)


@dataclass(frozen=True)
class FaultEvent:
    """One fault: ``kind`` strikes ``site`` on a window of calls.

    The event fires on matching hook calls number ``after`` through
    ``after + count - 1`` (zero-based, per-site counters);
    ``count=-1`` means "from ``after`` onwards, forever".  ``args``
    carries kind-specific knobs (``seconds`` for slowdowns/stalls,
    ``flips`` for corruption).
    """

    kind: str
    site: str
    after: int = 0
    count: int = 1
    args: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ReproError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {', '.join(FAULT_KINDS)}"
            )
        if self.site not in SITES:
            raise ReproError(
                f"unknown fault site {self.site!r}; "
                f"expected one of {', '.join(SITES)}"
            )
        if self.after < 0:
            raise ReproError(f"after must be >= 0, got {self.after}")
        if self.count < -1 or self.count == 0:
            raise ReproError(
                f"count must be -1 (forever) or >= 1, got {self.count}"
            )

    def fires_on(self, occurrence: int) -> bool:
        """Whether this event fires on the given per-site call index."""
        if occurrence < self.after:
            return False
        return self.count == -1 or occurrence < self.after + self.count


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of fault events — one adversarial input.

    ``seed`` drives every random choice the injector makes (which
    bytes to flip, jitter on injected slowdowns), so the *plan object*
    fully determines the injected behaviour.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    def for_site(self, site: str) -> List[FaultEvent]:
        """The plan's events striking one hook site, in plan order."""
        return [event for event in self.events if event.site == site]

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(event.kind for event in self.events))

    # -- serialisation (env var / CLI / artifacts) ---------------------

    def to_jsonable(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": self.seed,
            "events": [
                {
                    "kind": event.kind,
                    "site": event.site,
                    "after": event.after,
                    "count": event.count,
                    "args": dict(event.args),
                }
                for event in self.events
            ],
        }

    @classmethod
    def from_jsonable(cls, data: Mapping[str, Any]) -> "FaultPlan":
        try:
            events = tuple(
                FaultEvent(
                    kind=entry["kind"],
                    site=entry["site"],
                    after=int(entry.get("after", 0)),
                    count=int(entry.get("count", 1)),
                    args=dict(entry.get("args", {})),
                )
                for entry in data.get("events", ())
            )
            return cls(
                events=events,
                seed=int(data.get("seed", 0)),
                name=str(data.get("name", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReproError(f"malformed fault plan: {exc!r}")

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReproError(f"malformed fault plan JSON: {exc}")
        return cls.from_jsonable(data)


def standard_plans(seed: int = 0) -> Dict[str, FaultPlan]:
    """The standing chaos matrix: one named plan per fault mode.

    Every future fast path runs under these; the chaos suite and the
    CI ``chaos-smoke`` job iterate this dict.  Windows are chosen to
    strike early (the first jobs / first polls), when every batch is
    still in flight — the most adversarial moment.
    """

    def plan(name: str, *events: FaultEvent) -> FaultPlan:
        return FaultPlan(events=tuple(events), seed=seed, name=name)

    return {
        "worker-crash": plan(
            "worker-crash",
            FaultEvent("worker_crash", "worker.execute", after=1),
        ),
        "worker-stall": plan(
            "worker-stall",
            FaultEvent(
                "worker_stall",
                "worker.execute",
                after=1,
                args={"seconds": 600.0},
            ),
        ),
        "worker-slow": plan(
            "worker-slow",
            FaultEvent(
                "worker_slow",
                "worker.execute",
                after=0,
                count=-1,
                args={"seconds": 0.05},
            ),
        ),
        "connect-refuse": plan(
            "connect-refuse",
            FaultEvent("connect_refuse", "connect", after=0, count=2),
        ),
        "connection-drop": plan(
            "connection-drop",
            FaultEvent(
                "connection_drop", "executor.fetch_ready", after=2, count=2
            ),
        ),
        "broker-loss": plan(
            "broker-loss",
            FaultEvent("broker_loss", "chaos.broker", after=1),
        ),
        "cache-corrupt": plan(
            "cache-corrupt",
            FaultEvent(
                "cache_corrupt", "cachetier.blob", after=0, count=-1
            ),
            FaultEvent(
                "cache_corrupt", "cache.entry", after=0, count=-1
            ),
        ),
        "cache-truncate": plan(
            "cache-truncate",
            FaultEvent(
                "cache_truncate", "cachetier.blob", after=0, count=-1
            ),
            FaultEvent(
                "cache_truncate", "cache.entry", after=0, count=-1
            ),
        ),
    }
