"""``repro.faults`` — deterministic fault injection and chaos harness.

The standing correctness harness of the distributed runtime: a
:class:`FaultPlan` scripts adversarial events (worker crash/stall/
slowdown, connection refusals/drops, broker loss, cache-blob
corruption/truncation) against the named hook sites threaded through
:mod:`repro.dist` and :mod:`repro.exec.cache`, and the chaos harness
(:mod:`repro.faults.chaos`) asserts the invariant that defines the
whole runtime: **merges stay bitwise-identical to the fault-free
serial run under every plan.**

This package root stays import-light (plan + injector only; both
depend on nothing beyond ``repro.errors``), so the execution and dist
layers can call the hook functions without import cycles.  The chaos
harness — which imports the dist stack — loads explicitly as
``repro.faults.chaos``.

See ``docs/robustness.md`` for the fault taxonomy and the recovery
machinery each fault exercises.
"""

from repro.faults.injector import (
    ENV_VAR,
    FaultInjector,
    active,
    fire,
    install,
    install_from_env,
    transform,
)
from repro.faults.plan import (
    FAULT_KINDS,
    SITES,
    FaultEvent,
    FaultPlan,
    standard_plans,
)

__all__ = [
    "ENV_VAR",
    "FAULT_KINDS",
    "SITES",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "active",
    "fire",
    "install",
    "install_from_env",
    "standard_plans",
    "transform",
]
