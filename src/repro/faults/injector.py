"""The fault injector: hook points, actions, and the fault log.

The runtime is threaded with *named hook sites* — one-line calls into
this module at every place a fault can strike::

    faults.fire("worker.execute", job_id=job_id)   # may raise/sleep/exit
    data = faults.transform("cache.entry", data)   # may damage bytes

With no injector installed (production, and every ordinary test) both
are a single ``None``-check.  The chaos harness installs a
:class:`FaultInjector` built from a :class:`~repro.faults.plan.FaultPlan`
— process-wide, like the active cache of :mod:`repro.dist.jobs` — and
forked workers inherit one through the ``REPRO_FAULT_PLAN`` environment
variable (:func:`install_from_env`, called by the worker loop).

Actions are deterministic functions of ``(plan, site, occurrence)``:

* ``worker_crash`` — ``os._exit`` mid-job, the SIGKILL-equivalent;
* ``worker_stall`` — the job hangs *and* the ``worker.heartbeat`` hook
  starts raising, so the heartbeat thread dies too: a frozen process,
  exactly what the broker's reaper must recover from;
* ``worker_slow`` — the job sleeps a little (a straggler);
* ``connect_refuse`` / ``connection_drop`` — stdlib connection errors
  raised at the transport hooks, which the
  :class:`~repro.retry.RetryPolicy` wrappers must absorb;
* ``cache_corrupt`` / ``cache_truncate`` — blob/entry bytes damaged
  (seeded byte flips / truncation), which the sha256 envelopes must
  quarantine.

Every fired event is recorded (and optionally appended to a log file),
so a chaos run leaves an auditable trail of what was injected when.
"""

from __future__ import annotations

import os
import threading
import time
from random import Random
from typing import Any, Dict, List, Optional

from repro import obs
from repro.faults.plan import FaultEvent, FaultPlan

__all__ = [
    "ENV_VAR",
    "FaultInjector",
    "active",
    "fire",
    "install",
    "install_from_env",
    "transform",
]

#: Environment variable carrying a JSON fault plan into subprocesses.
ENV_VAR = "REPRO_FAULT_PLAN"


class FaultInjector:
    """Executes one plan's events as hook calls arrive.

    Thread-safe: hook sites are hit concurrently (the worker's main
    loop and its heartbeat thread, the broker's connection threads).
    """

    def __init__(
        self, plan: FaultPlan, log_path: Optional[str] = None
    ) -> None:
        self.plan = plan
        self.log_path = log_path
        self.records: List[Dict[str, Any]] = []
        self.stalled = False
        self._counts: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._rng = Random(plan.seed)

    # -- bookkeeping ---------------------------------------------------

    def _next_occurrence(self, site: str) -> int:
        with self._lock:
            occurrence = self._counts.get(site, 0)
            self._counts[site] = occurrence + 1
            return occurrence

    def _matching(self, site: str, occurrence: int) -> List[FaultEvent]:
        return [
            event
            for event in self.plan.for_site(site)
            if event.fires_on(occurrence)
        ]

    def _record(self, event: FaultEvent, site: str, occurrence: int,
                detail: str) -> None:
        record = {
            "plan": self.plan.name,
            "kind": event.kind,
            "site": site,
            "occurrence": occurrence,
            "detail": detail,
            "pid": os.getpid(),
        }
        obs.counter("faults.injected").inc()
        with self._lock:
            self.records.append(record)
            if self.log_path:
                line = (
                    f"plan={record['plan']} kind={record['kind']} "
                    f"site={site} occurrence={occurrence} "
                    f"pid={record['pid']} {detail}\n"
                )
                try:
                    with open(self.log_path, "a") as fh:
                        fh.write(line)
                except OSError:
                    pass  # a full disk must not turn logging into a fault

    # -- the two hook shapes -------------------------------------------

    def fire(self, site: str, **context: Any) -> None:
        """Action hook: may raise, sleep, or kill the process."""
        occurrence = self._next_occurrence(site)
        if site == "worker.heartbeat" and self.stalled:
            # A frozen process beats nothing: the heartbeat thread sees
            # a torn connection and exits, letting the reaper fire.
            raise ConnectionResetError("injected: heartbeat frozen")
        for event in self._matching(site, occurrence):
            if event.kind == "worker_crash":
                self._record(event, site, occurrence, "os._exit(17)")
                os._exit(17)
            if event.kind == "worker_stall":
                seconds = float(event.args.get("seconds", 600.0))
                self._record(event, site, occurrence, f"stall {seconds}s")
                self.stalled = True
                time.sleep(seconds)
                self.stalled = False
                continue
            if event.kind == "worker_slow":
                seconds = float(event.args.get("seconds", 0.05))
                self._record(event, site, occurrence, f"slow {seconds}s")
                time.sleep(seconds)
                continue
            if event.kind == "connect_refuse":
                self._record(event, site, occurrence, "refused")
                raise ConnectionRefusedError(
                    f"injected: connection refused at {site}"
                )
            if event.kind == "connection_drop":
                self._record(event, site, occurrence, "dropped")
                raise ConnectionResetError(
                    f"injected: connection dropped at {site}"
                )
            # broker_loss and the byte-damage kinds are not action
            # hooks: the harness and transform() own those.

    def transform(self, site: str, data: bytes) -> bytes:
        """Byte hook: may corrupt or truncate the passing blob."""
        occurrence = self._next_occurrence(site)
        for event in self._matching(site, occurrence):
            if event.kind == "cache_corrupt" and data:
                flips = int(event.args.get("flips", 3))
                # Seeded by (plan seed, site, occurrence): the same
                # plan damages the same bytes on every run.
                rng = Random(f"{self.plan.seed}:{site}:{occurrence}")
                damaged = bytearray(data)
                for _ in range(max(1, flips)):
                    index = rng.randrange(len(damaged))
                    damaged[index] ^= 0xFF
                self._record(
                    event, site, occurrence, f"flipped {flips} byte(s)"
                )
                data = bytes(damaged)
            elif event.kind == "cache_truncate" and data:
                keep = len(data) // 3
                self._record(
                    event, site, occurrence,
                    f"truncated {len(data)} -> {keep} bytes",
                )
                data = data[:keep]
        return data


#: Process-wide installed injector (None = all hooks are no-ops).
_ACTIVE: Optional[FaultInjector] = None


def install(injector: Optional[FaultInjector]) -> Optional[FaultInjector]:
    """Install the process-wide injector; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    return previous


def active() -> Optional[FaultInjector]:
    """The currently installed injector (``None`` = faults disabled)."""
    return _ACTIVE


def install_from_env() -> Optional[FaultInjector]:
    """Install a plan shipped via :data:`ENV_VAR` (worker startup).

    Returns the installed injector, or ``None`` when the variable is
    unset/empty.  The optional ``REPRO_FAULT_LOG`` names the log file.
    """
    text = os.environ.get(ENV_VAR, "")
    if not text:
        return None
    injector = FaultInjector(
        FaultPlan.from_json(text),
        log_path=os.environ.get("REPRO_FAULT_LOG") or None,
    )
    install(injector)
    return injector


def fire(site: str, **context: Any) -> None:
    """Module-level action hook (no-op without an installed injector)."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire(site, **context)


def transform(site: str, data: bytes) -> bytes:
    """Module-level byte hook (identity without an installed injector)."""
    injector = _ACTIVE
    if injector is None:
        return data
    return injector.transform(site, data)
