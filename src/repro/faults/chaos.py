"""The chaos harness: run the fault matrix, assert bitwise identity.

``run_chaos_matrix`` executes one scenario×budget matrix under every
fault plan × execution mode combination and compares each outcome to
the fault-free serial reference — the single invariant the whole
runtime is built around: **faults may change timing, logs and
counters, never a number.**

Modes:

* ``serial`` / ``jobs`` — the injector rides in-process (and into
  forked pool workers); most transport faults are structurally
  impossible here and inject nothing, which is itself part of the
  contract (a no-op plan must also change nothing).
* ``dist`` — a real in-process :class:`~repro.dist.queue.BrokerServer`
  plus forked worker processes.  The *first* worker receives the fault
  plan through ``REPRO_FAULT_PLAN`` (so one worker crashes, stalls, or
  corrupts blobs while the rest of the fleet heals around it); the
  driver installs the same plan in-process for the connect/executor
  hooks; ``broker_loss`` plans make the harness stop the broker after
  ``after`` completed blocks, forcing the executor's local fallback.

This module imports the dist stack and is deliberately *not* pulled in
by ``repro.faults``'s package root — import it as
``repro.faults.chaos``.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.faults.injector import ENV_VAR, FaultInjector, install
from repro.faults.plan import FaultPlan, standard_plans

__all__ = ["ChaosCase", "ChaosReport", "run_chaos_matrix"]

#: Lease timeout of the harness broker: short enough that reap-based
#: recovery (crash, stall) resolves in seconds, long enough that a
#: loaded CI box never reaps a live worker (they beat every lease/4).
CHAOS_LEASE_TIMEOUT = 2.0

_FORK = multiprocessing.get_context("fork")


@dataclass
class ChaosCase:
    """One (plan, mode) cell of the chaos matrix."""

    plan: str
    mode: str
    matched: bool
    injected: int
    fallbacks: int = 0
    detail: str = ""


@dataclass
class ChaosReport:
    """Every case plus the reference the cases were compared against."""

    reference: Any
    cases: List[ChaosCase] = field(default_factory=list)

    @property
    def all_match(self) -> bool:
        return all(case.matched for case in self.cases)

    def render(self) -> str:
        lines = [
            f"{'plan':18s} {'mode':6s} {'ok':>3s} {'injected':>8s} "
            f"{'fallbacks':>9s}  detail"
        ]
        for case in self.cases:
            lines.append(
                f"{case.plan:18s} {case.mode:6s} "
                f"{'ok' if case.matched else 'DIFF':>4s} "
                f"{case.injected:8d} {case.fallbacks:9d}  {case.detail}"
            )
        verdict = (
            "all outcomes bitwise-identical to the fault-free serial run"
            if self.all_match
            else "OUTCOME MISMATCH — determinism contract violated"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _worker_env(plan: FaultPlan, log_path: Optional[Path]) -> Dict[str, str]:
    env = {ENV_VAR: plan.to_json()}
    if log_path is not None:
        env["REPRO_FAULT_LOG"] = str(log_path)
    return env


#: Hook sites that only fire on cache *reads*: plans striking them need
#: a warm pass first (a cold matrix has nothing to hit, so nothing to
#: corrupt).
_CACHE_SITES = frozenset(
    {"cachetier.get", "cachetier.put", "cachetier.blob", "cache.entry"}
)


def _worker_entry(address, close_fileno: Optional[int], kwargs) -> None:
    """Forked-child entry: shed inherited broker fds, then work.

    The child inherits the in-process broker's *listening* socket fd;
    left open it keeps the port accepting into a kernel backlog nobody
    serves after the harness stops the broker (a zombie listener the
    probe in :mod:`repro.dist.queue` would have to time out on).
    """
    if close_fileno is not None:
        try:
            os.close(close_fileno)
        except OSError:
            pass
    from repro.dist.worker import worker_loop

    worker_loop(address, **kwargs)


def _spawn_worker(
    address,
    extra_env: Optional[Dict[str, str]] = None,
    close_fileno: Optional[int] = None,
    cache_dir: Optional[str] = None,
):
    """Fork one worker process, optionally with a fault-plan env.

    Environment is set around the fork (fork children inherit the
    parent's environ snapshot) and restored immediately after.
    """
    saved: Dict[str, Optional[str]] = {}
    if extra_env:
        for key, value in extra_env.items():
            saved[key] = os.environ.get(key)
            os.environ[key] = value
    try:
        process = _FORK.Process(
            target=_worker_entry,
            # prefetch=1 so blocks spread across the fleet instead of
            # one fast worker leasing everything — the faulted worker
            # must actually receive work for its plan to fire.
            args=(
                address,
                close_fileno,
                {
                    "poll_interval": 0.02,
                    "prefetch": 1,
                    "cache_dir": cache_dir,
                },
            ),
            daemon=True,
        )
        process.start()
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return process


def _run_local_mode(
    plan: FaultPlan, jobs: int, log_path: Optional[Path], matrix_kwargs
) -> Tuple[Any, FaultInjector, int]:
    from repro.dist.fleet import run_matrix

    injector = FaultInjector(
        plan, log_path=str(log_path) if log_path else None
    )
    previous = install(injector)
    try:
        outcome = run_matrix(jobs=jobs, **matrix_kwargs)
    finally:
        install(previous)
    return outcome.to_jsonable(), injector, 0


def _run_dist_mode(
    plan: FaultPlan,
    workers: int,
    log_path: Optional[Path],
    matrix_kwargs,
    schedule: Optional[str] = None,
) -> Tuple[Any, FaultInjector, int]:
    from repro.dist.executor import DistExecutor
    from repro.dist.fleet import run_matrix
    from repro.dist.queue import BrokerServer

    server = BrokerServer(
        port=0, lease_timeout=CHAOS_LEASE_TIMEOUT
    ).start_in_thread()
    injector = FaultInjector(
        plan, log_path=str(log_path) if log_path else None
    )
    # The harness owns broker loss: nothing inside the runtime may
    # kill the broker, so the plan names the block count after which
    # the harness pulls the plug.
    broker_loss = next(
        (event for event in plan.events if event.kind == "broker_loss"),
        None,
    )
    stopped = [False]

    def _maybe_stop_broker(index: int, block: Any) -> None:
        if (
            broker_loss is not None
            and not stopped[0]
            and index + 1 >= max(1, broker_loss.after)
        ):
            stopped[0] = True
            injector._record(
                broker_loss, "chaos.broker", index, "broker stopped"
            )
            server.stop()

    # The faulted worker starts first with a head start, so it is
    # pulling jobs before its clean peers connect — otherwise a fast
    # clean worker can drain a small matrix and the plan never fires.
    listen_fd = server.listen_fileno()
    # Per-worker disk caches: cache-site plans need the local
    # ResultCache tier live so ``cache.entry`` damage has something to
    # strike; harmless (a few misses and publishes) for every other
    # plan.
    tmp = tempfile.TemporaryDirectory(prefix="repro-chaos-cache-")
    # Cache damage is healed *locally* (quarantine + recompute), so a
    # pure cache plan rides in every worker — injection then cannot
    # depend on which worker wins the lease race.  Process-level faults
    # stay confined to the first worker, whose head start guarantees it
    # leases work before its clean peers connect.
    cache_only = all(event.site in _CACHE_SITES for event in plan.events)
    plan_env = _worker_env(plan, log_path)
    processes = [
        _spawn_worker(
            server.address,
            extra_env=plan_env,
            close_fileno=listen_fd,
            cache_dir=os.path.join(tmp.name, "w0"),
        )
    ]
    time.sleep(0.4)
    processes.extend(
        _spawn_worker(
            server.address,
            extra_env=plan_env if cache_only else None,
            close_fileno=listen_fd,
            cache_dir=os.path.join(tmp.name, f"w{index}"),
        )
        for index in range(1, max(1, workers))
    )
    previous = install(injector)
    try:
        executor = DistExecutor(
            server.address,
            poll_interval=0.02,
            timeout=300,
            no_worker_grace=60,
            on_broker_loss="fallback",
            fallback_jobs=1,
            schedule=schedule,
        )
        if any(event.site in _CACHE_SITES for event in plan.events):
            # Warm pass: populate worker caches and the broker's shared
            # store with clean blobs, so the measured pass below
            # actually *reads* (and the plan corrupts those reads).
            # Corruption strikes lookups only, so the warm pass stores
            # pristine bytes even with the plan active.
            run_matrix(executor=executor, **matrix_kwargs)
        outcome = run_matrix(
            executor=executor,
            on_result=_maybe_stop_broker,
            **matrix_kwargs,
        )
        fallbacks = executor.fallbacks
    finally:
        install(previous)
        for process in processes:
            process.terminate()
        for process in processes:
            process.join(timeout=5)
        if not stopped[0]:
            server.stop()
        tmp.cleanup()
    return outcome.to_jsonable(), injector, fallbacks


def run_chaos_matrix(
    scenario_names: Sequence[str],
    budgets: Optional[Sequence[int]] = None,
    replications: int = 2,
    duration: float = 60.0,
    base_seed: int = 0,
    seed_scheme: str = "legacy",
    sim_backend: str = "batched",
    block_reps: int = 1,
    plans: Optional[Dict[str, FaultPlan]] = None,
    modes: Sequence[str] = ("serial", "jobs", "dist"),
    jobs: int = 2,
    workers: int = 2,
    log_dir: Optional[Any] = None,
    schedule: Optional[str] = None,
) -> ChaosReport:
    """Run the fault matrix; every cell must reproduce the reference.

    Parameters mirror :func:`~repro.dist.fleet.run_matrix` for the
    workload itself; ``plans`` defaults to
    :func:`~repro.faults.plan.standard_plans`, ``modes`` selects the
    execution lanes, and ``log_dir`` (optional) collects one fault log
    per (plan, mode) case.  ``schedule`` sets the dist lane's fleet
    scheduling policy (``"cost"`` exercises LPT ordering, sized and
    pinned leases, and batched uploads under every fault plan — the
    scheduler's own determinism gate).
    """
    bad = [mode for mode in modes if mode not in ("serial", "jobs", "dist")]
    if bad:
        raise ReproError(f"unknown chaos mode(s): {bad}")
    matrix_kwargs = dict(
        scenario_names=scenario_names,
        budgets=budgets,
        replications=replications,
        duration=duration,
        base_seed=base_seed,
        seed_scheme=seed_scheme,
        sim_backend=sim_backend,
        block_reps=block_reps,
    )
    from repro.dist.fleet import run_matrix

    reference = run_matrix(**matrix_kwargs).to_jsonable()
    report = ChaosReport(reference=reference)
    plans = plans if plans is not None else standard_plans()
    if log_dir is not None:
        log_dir = Path(log_dir)
        log_dir.mkdir(parents=True, exist_ok=True)
    for name, plan in plans.items():
        for mode in modes:
            log_path = (
                log_dir / f"{name}-{mode}.log" if log_dir is not None
                else None
            )
            if mode == "dist":
                jsonable, injector, fallbacks = _run_dist_mode(
                    plan, workers, log_path, matrix_kwargs,
                    schedule=schedule,
                )
            else:
                jsonable, injector, fallbacks = _run_local_mode(
                    plan, jobs if mode == "jobs" else 1,
                    log_path, matrix_kwargs,
                )
            # The log file is shared with forked workers, so it sees
            # injections the driver-side record list cannot.
            strikes = [
                f"{r['kind']}@{r['site']}" for r in injector.records
            ]
            if log_path is not None and log_path.exists():
                strikes = []
                for line in open(log_path):
                    fields = dict(
                        token.split("=", 1)
                        for token in line.split()
                        if "=" in token
                    )
                    strikes.append(
                        f"{fields.get('kind', '?')}@"
                        f"{fields.get('site', '?')}"
                    )
            report.cases.append(
                ChaosCase(
                    plan=name,
                    mode=mode,
                    matched=(jsonable == reference),
                    injected=len(strikes),
                    fallbacks=fallbacks,
                    detail="; ".join(sorted(set(strikes))),
                )
            )
    return report
